// The SAP verifier (Vrf).
//
// Vrf is the trusted entity that (1) provisions per-device keys at setup,
// (2) knows the set of valid states VS = {cfg_1 .. cfg_N}, (3) issues
// challenges, and (4) verifies the aggregated report:
//
//   res_i = HMAC_{K_mi,Vrf}(cfg_i || chal)         for every device
//   RES_S = res_1 ⊕ ... ⊕ res_N
//   verify(H_S) = [H_S == RES_S]
//
// Report verification is offline (excluded from T_CA): Vrf can precompute
// RES_S for the chosen chal before the report returns.
//
// Keys: K_{mi,Vrf} = HKDF(master, "sap-device-key" || i). Equivalent to
// independently random keys under the PRF assumption, and it keeps Vrf's
// storage O(1) — devices still hold only their own key.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/mac_cache.hpp"
#include "net/topology.hpp"
#include "sap/config.hpp"
#include "sap/messages.hpp"

namespace cra::sap {

class Verifier {
 public:
  /// `device_count` devices with node ids 1..device_count; `master` is
  /// the deployment master secret.
  Verifier(SapConfig config, std::uint32_t device_count, BytesView master);

  const SapConfig& config() const noexcept { return config_; }
  std::uint32_t device_count() const noexcept { return device_count_; }

  /// K_{mi,Vrf} — the provisioning path hands this to device `id`.
  Bytes device_key(net::NodeId id) const;

  /// Group key authenticating Vrf's requests (§VIII DoS mitigation);
  /// empty when the feature is disabled.
  Bytes request_auth_key() const;

  /// --- Valid states VS ---
  /// Record the expected PMEM content cfg_i for device `id`.
  void set_expected_content(net::NodeId id, Bytes content);
  const Bytes& expected_content(net::NodeId id) const;

  /// --- Offline verification (Definition: verify) ---
  /// res_i for one device under challenge `chal`.
  Bytes expected_token(net::NodeId id, std::uint32_t chal) const;
  /// Allocation-free res_i into a caller-owned buffer. First use for a
  /// device derives K_{mi,Vrf} and caches its HMAC midstates; later
  /// calls resume them (no HKDF, no pad compressions, no heap).
  void expected_token_into(net::NodeId id, std::uint32_t chal,
                           crypto::MacBuf& out) const;
  /// RES_S = ⊕ res_i over all devices.
  Bytes expected_result(std::uint32_t chal) const;
  /// Binary verdict: H_S == RES_S (constant-time compare).
  bool verify(BytesView h_s, std::uint32_t chal) const;

  /// kIdentify-mode verdict: classify every device.
  struct IdentifyOutcome {
    std::vector<net::NodeId> bad;      // token present but wrong
    std::vector<net::NodeId> missing;  // no report received
    bool all_good() const noexcept { return bad.empty() && missing.empty(); }
  };
  IdentifyOutcome verify_identify(const std::vector<DeviceReport>& reports,
                                  std::uint32_t chal) const;

  /// Degraded-mode per-device verdict (adaptive-timeout rounds).
  enum class DeviceStatus : std::uint8_t {
    kHealthy = 0,      // valid token for this round's challenge
    kUnreachable = 1,  // no token — crashed, asleep, or partitioned
    kUntrusted = 2,    // token present but wrong: fail attestation
    kRebooted = 3,     // valid token, but device restarted mid-window
  };

  struct Classification {
    bool enabled = false;  // false = round ran without degraded reporting
    std::vector<DeviceStatus> status;  // index id-1
    std::uint32_t healthy = 0;
    std::uint32_t unreachable = 0;
    std::uint32_t untrusted = 0;
    std::uint32_t rebooted = 0;
    std::vector<net::NodeId> untrusted_ids;
    std::vector<net::NodeId> unreachable_ids;
    std::vector<net::NodeId> rebooted_ids;

    /// Round verdict under degraded reporting: nobody failed attestation
    /// and nobody was out of reach. Rebooted devices proved a valid state
    /// at a later tick — counted separately, not as healthy.
    bool all_healthy() const noexcept {
      return untrusted == 0 && unreachable == 0 && rebooted == 0;
    }
    /// Fraction of the swarm that produced *some* attestation evidence.
    double completion() const noexcept {
      const std::size_t n = status.size();
      if (n == 0) return 0.0;
      return static_cast<double>(n - unreachable) / static_cast<double>(n);
    }
  };

  /// Classify every device from an extended-identify report under the
  /// round challenge `chal`:
  ///   kEntryOk          -> token matches res_i(chal) ? healthy : untrusted
  ///   kEntryLate        -> tick >= chal and token valid at entry.tick
  ///                        ? rebooted : untrusted
  ///   kEntryRebooted    -> token valid at chal ? rebooted : untrusted
  ///   kEntryUnreachable -> unreachable (no evidence)
  ///   no entry at all   -> unreachable
  Classification classify(const std::vector<DeviceReport>& reports,
                          std::uint32_t chal) const;

  static const char* device_status_name(DeviceStatus status) noexcept;

 private:
  void check_id(net::NodeId id) const;
  const crypto::PrecomputedMac& mac_for(net::NodeId id) const;

  SapConfig config_;
  std::uint32_t device_count_;
  Bytes master_;
  std::vector<Bytes> expected_;  // index id-1
  // Per-device HMAC midstate caches, filled on first use (verification
  // is offline and single-threaded, so lazy mutation is safe). Saves an
  // HKDF derivation plus two compressions per expected-token query.
  mutable std::vector<crypto::PrecomputedMac> mac_cache_;  // index id-1
};

}  // namespace cra::sap
