// The SAP verifier (Vrf).
//
// Vrf is the trusted entity that (1) provisions per-device keys at setup,
// (2) knows the set of valid states VS = {cfg_1 .. cfg_N}, (3) issues
// challenges, and (4) verifies the aggregated report:
//
//   res_i = HMAC_{K_mi,Vrf}(cfg_i || chal)         for every device
//   RES_S = res_1 ⊕ ... ⊕ res_N
//   verify(H_S) = [H_S == RES_S]
//
// Report verification is offline (excluded from T_CA): Vrf can precompute
// RES_S for the chosen chal before the report returns.
//
// Keys: K_{mi,Vrf} = HKDF(master, "sap-device-key" || i). Equivalent to
// independently random keys under the PRF assumption, and it keeps Vrf's
// storage O(1) — devices still hold only their own key.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "net/topology.hpp"
#include "sap/config.hpp"
#include "sap/messages.hpp"

namespace cra::sap {

class Verifier {
 public:
  /// `device_count` devices with node ids 1..device_count; `master` is
  /// the deployment master secret.
  Verifier(SapConfig config, std::uint32_t device_count, BytesView master);

  const SapConfig& config() const noexcept { return config_; }
  std::uint32_t device_count() const noexcept { return device_count_; }

  /// K_{mi,Vrf} — the provisioning path hands this to device `id`.
  Bytes device_key(net::NodeId id) const;

  /// Group key authenticating Vrf's requests (§VIII DoS mitigation);
  /// empty when the feature is disabled.
  Bytes request_auth_key() const;

  /// --- Valid states VS ---
  /// Record the expected PMEM content cfg_i for device `id`.
  void set_expected_content(net::NodeId id, Bytes content);
  const Bytes& expected_content(net::NodeId id) const;

  /// --- Offline verification (Definition: verify) ---
  /// res_i for one device under challenge `chal`.
  Bytes expected_token(net::NodeId id, std::uint32_t chal) const;
  /// RES_S = ⊕ res_i over all devices.
  Bytes expected_result(std::uint32_t chal) const;
  /// Binary verdict: H_S == RES_S (constant-time compare).
  bool verify(BytesView h_s, std::uint32_t chal) const;

  /// kIdentify-mode verdict: classify every device.
  struct IdentifyOutcome {
    std::vector<net::NodeId> bad;      // token present but wrong
    std::vector<net::NodeId> missing;  // no report received
    bool all_good() const noexcept { return bad.empty() && missing.empty(); }
  };
  IdentifyOutcome verify_identify(const std::vector<DeviceReport>& reports,
                                  std::uint32_t chal) const;

 private:
  void check_id(net::NodeId id) const;

  SapConfig config_;
  std::uint32_t device_count_;
  Bytes master_;
  std::vector<Bytes> expected_;  // index id-1
};

}  // namespace cra::sap
