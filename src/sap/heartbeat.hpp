// Absence detection for physical-capture attacks (§VIII: "Mitigation of
// other types of attacks (e.g., physical...)"; the DARPA dimension of
// the design space in §II).
//
// SAP's security game quantifies over software state at t = chal: a
// device that is physically captured, tampered offline, and returned
// with its PMEM restored before the next round attests cleanly — the
// protocol is *blind* to the absence window. DARPA's countermeasure is
// periodic presence confirmation: every device emits authenticated
// heartbeats; a capture longer than the detection threshold leaves an
// unexplainable gap.
//
// This module implements that extension on the same substrate: devices
// beat up the deployment tree every `period` (MACed with a pairwise key,
// so absence cannot be faked away), parents track per-child gaps, and a
// collection sweep floods down / aggregates up exactly like a SAP report
// so the verifier learns every device whose silence exceeded
// `absence_threshold`. The security trade-off the paper predicts is
// measurable: detection needs continuous traffic (O(N) messages per
// period) versus SAP's O(N) per round — the ablate_capture bench
// quantifies it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mac_cache.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace cra::sap {

struct HeartbeatConfig {
  crypto::HashAlg alg = crypto::HashAlg::kSha1;
  sim::Duration period = sim::Duration::from_ms(100);
  /// A gap longer than this is reported (must exceed one period plus
  /// network jitter; DARPA picks it from the minimum time a meaningful
  /// physical attack needs).
  sim::Duration absence_threshold = sim::Duration::from_ms(250);
  std::uint32_t mac_size = 12;  // truncated heartbeat authenticator
  net::LinkParams link{};
  std::uint32_t tree_arity = 2;

  std::size_t beat_size() const noexcept { return 8 + mac_size; }
};

struct AbsenceReport {
  net::NodeId device = 0;
  sim::Duration gap;  // observed silence at collection time
};

class HeartbeatSimulation {
 public:
  HeartbeatSimulation(HeartbeatConfig config, net::Tree tree,
                      std::uint64_t seed = 1);
  HeartbeatSimulation(const HeartbeatSimulation&) = delete;
  HeartbeatSimulation& operator=(const HeartbeatSimulation&) = delete;

  static HeartbeatSimulation balanced(HeartbeatConfig config,
                                      std::uint32_t devices,
                                      std::uint64_t seed = 1);

  const HeartbeatConfig& config() const noexcept { return config_; }
  const net::Tree& tree() const noexcept { return tree_; }
  net::Network& network() noexcept { return network_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  std::uint32_t device_count() const noexcept { return tree_.device_count(); }

  /// --- Adversary actions ---
  /// Physically capture `id`: it stops beating and stops relaying (its
  /// subtree goes dark through it, which the report honestly reflects).
  void capture_device(net::NodeId id);
  /// Return the device to the network (e.g. after offline tampering).
  void release_device(net::NodeId id);
  bool is_captured(net::NodeId id) const;

  /// Run the monitoring plane for `duration` of simulated time.
  void run_monitoring(sim::Duration duration);

  /// Collection sweep: flood a request down, aggregate per-parent
  /// absence logs up. Returns every device whose observed gap exceeded
  /// the threshold at sweep time, sorted by id.
  std::vector<AbsenceReport> collect();

  /// Heartbeats rejected due to bad MACs (forgery attempts).
  std::uint64_t forged_beats() const noexcept { return forged_; }

 private:
  struct Dev {
    Bytes beat_key;           // pairwise key with the parent
    // Midstate cache over beat_key; beats are emitted every period per
    // device, so the cached pads pay off immediately.
    crypto::PrecomputedMac beat_mac;
    bool captured = false;
    std::uint32_t seq = 0;
    sim::SimTime last_seen;   // parent-side, per child: see last_seen_
    // Collection state.
    bool collecting = false;
    std::uint32_t waiting = 0;
    std::vector<AbsenceReport> gathered;
  };

  Dev& dev(net::NodeId id) { return devices_[id - 1]; }
  const Dev& dev(net::NodeId id) const { return devices_[id - 1]; }

  void schedule_beat(net::NodeId id);
  void on_message(const net::Message& msg);
  void handle_beat(net::NodeId parent, const net::Message& msg);
  void handle_collect(net::NodeId id);
  void handle_log(net::NodeId id, const net::Message& msg);
  void absence_entries(net::NodeId id, std::vector<AbsenceReport>* out);
  void forward_log(net::NodeId id);
  Bytes encode_log(const std::vector<AbsenceReport>& entries) const;
  bool decode_log(BytesView payload,
                  std::vector<AbsenceReport>* out) const;

  HeartbeatConfig config_;
  net::Tree tree_;
  sim::Scheduler scheduler_;
  net::Network network_;
  Bytes master_;
  std::vector<Dev> devices_;
  std::vector<sim::SimTime> last_seen_;  // indexed by child id
  std::uint64_t forged_ = 0;
  sim::SimTime monitor_until_;

  // Collection bookkeeping (one sweep at a time).
  bool collect_active_ = false;
  std::uint32_t root_waiting_ = 0;
  std::vector<AbsenceReport> root_gathered_;
};

}  // namespace cra::sap
