// Result of one SAP round, with the phase breakdown Figure 3(b) plots.
#pragma once

#include <cstdint>

#include "sap/verifier.hpp"
#include "sim/time.hpp"

namespace cra::sap {

struct RoundReport {
  bool verified = false;
  std::uint32_t chal_tick = 0;

  // Timeline (absolute simulation times).
  sim::SimTime t_chal;            // Vrf issued chal
  sim::SimTime inbound_end;       // last device received chal
  sim::SimTime t_att;             // scheduled synchronous attest time
  sim::SimTime measurement_end;   // t_att + T_att
  sim::SimTime t_resp;            // Vrf holds H_S

  // Phases (Figure 3(b)).
  sim::Duration inbound() const noexcept { return inbound_end - t_chal; }
  sim::Duration slack() const noexcept { return t_att - inbound_end; }
  sim::Duration measurement() const noexcept {
    return measurement_end - t_att;
  }
  sim::Duration outbound() const noexcept {
    return t_resp - measurement_end;
  }
  /// T_CA as Equation 6 defines it: t_resp − t_att.
  sim::Duration t_ca() const noexcept { return t_resp - t_att; }
  /// Whole-round execution time as Figure 3(a) plots it.
  sim::Duration total() const noexcept { return t_resp - t_chal; }

  // Network utilization U_CA (Equation 7) over [t_chal, t_resp].
  std::uint64_t u_ca_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;

  std::uint32_t devices = 0;
  /// kCount / kIdentify modes: devices whose token reached Vrf.
  std::uint32_t responded = 0;
  std::uint32_t repolls = 0;  // lossy-network retransmissions issued

  /// kIdentify mode only.
  Verifier::IdentifyOutcome identify;

  /// Degraded-mode per-device classification (adaptive-timeout rounds
  /// only; `degraded.enabled == false` otherwise).
  Verifier::Classification degraded;
  /// Total simulated time parents spent waiting in backoff before
  /// re-polls this round (adaptive mode; 0 otherwise).
  std::uint64_t backoff_wait_ns = 0;
};

}  // namespace cra::sap
