// Swarm-level energy estimation (paper §VII-D scaled up).
//
// Table III gives per-device power for leaves and inner nodes; a
// deployment planner wants the fleet totals and the per-role split for a
// concrete topology. This glues the power module to a tree: count
// leaves/inner nodes, evaluate the §VII-D bounds with the protocol's
// actual message sizes (including the QoA mode's report growth), and
// aggregate.
#pragma once

#include "net/topology.hpp"
#include "power/power.hpp"
#include "sap/config.hpp"

namespace cra::sap {

struct SwarmEnergyEstimate {
  std::uint32_t leaves = 0;
  std::uint32_t inner = 0;
  double leaf_mw = 0;       // per-device (Table III row)
  double inner_mw = 0;
  double total_mw = 0;      // fleet sum
  double mean_mw = 0;       // per device
};

/// Per-round energy profile of `tree` under `config` on mote `mote`.
/// For kIdentify the inner-node report sizes grow with the subtree; we
/// charge the *average* report size so the fleet total stays exact.
SwarmEnergyEstimate estimate_swarm_energy(const net::Tree& tree,
                                          const SapConfig& config,
                                          const power::MoteProfile& mote);

}  // namespace cra::sap
