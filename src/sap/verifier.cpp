#include "sap/verifier.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "crypto/backend.hpp"
#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"

namespace cra::sap {

namespace {

std::array<std::uint8_t, 4> u32le_bytes(std::uint32_t v) noexcept {
  std::array<std::uint8_t, 4> b{};
  store_u32le(b.data(), v);
  return b;
}

}  // namespace

Verifier::Verifier(SapConfig config, std::uint32_t device_count,
                   BytesView master)
    : config_(config),
      device_count_(device_count),
      master_(master.begin(), master.end()),
      expected_(device_count),
      mac_cache_(device_count) {
  if (device_count_ == 0) {
    throw std::invalid_argument("Verifier: empty attestation group");
  }
  if (master_.empty()) {
    throw std::invalid_argument("Verifier: empty master secret");
  }
}

void Verifier::check_id(net::NodeId id) const {
  if (id == 0 || id > device_count_) {
    throw std::out_of_range("Verifier: device id out of range");
  }
}

Bytes Verifier::device_key(net::NodeId id) const {
  check_id(id);
  return crypto::derive_device_key(master_, id, config_.token_size());
}

Bytes Verifier::request_auth_key() const {
  if (!config_.authenticate_requests) return {};
  return crypto::hkdf(master_, /*salt=*/{},
                      to_bytes("sap-request-auth-key"), 32);
}

void Verifier::set_expected_content(net::NodeId id, Bytes content) {
  check_id(id);
  expected_[id - 1] = std::move(content);
}

const Bytes& Verifier::expected_content(net::NodeId id) const {
  check_id(id);
  return expected_[id - 1];
}

const crypto::PrecomputedMac& Verifier::mac_for(net::NodeId id) const {
  auto& cache = mac_cache_[id - 1];
  if (!cache.ready()) {
    Bytes key = device_key(id);
    cache.init(config_.alg, key);
    crypto::secure_wipe(key);
  }
  return cache;
}

void Verifier::expected_token_into(net::NodeId id, std::uint32_t chal,
                                   crypto::MacBuf& out) const {
  check_id(id);
  std::uint8_t chal_le[4];
  store_u32le(chal_le, chal);
  mac_for(id).mac_into(expected_[id - 1], BytesView(chal_le, 4), out);
}

Bytes Verifier::expected_token(net::NodeId id, std::uint32_t chal) const {
  crypto::MacBuf buf;
  expected_token_into(id, chal, buf);
  return Bytes(buf.bytes.begin(), buf.bytes.begin() + buf.len);
}

Bytes Verifier::expected_result(std::uint32_t chal) const {
  // RES_S is a pure fold over independent per-device MACs, so the whole
  // sweep batches through the active crypto backend: a SIMD backend
  // computes `lanes` device tokens per compression sweep, the scalar
  // reference walks them one by one — same tokens, same tally.
  Bytes acc(config_.token_size(), 0);
  std::uint8_t chal_le[4];
  store_u32le(chal_le, chal);
  const BytesView chal_view(chal_le, 4);
  const crypto::Backend& backend = crypto::active_backend();
  constexpr std::size_t kChunk = 256;
  std::array<crypto::MacJob, kChunk> jobs;
  std::array<crypto::MacBuf, kChunk> outs;
  for (net::NodeId base = 1; base <= device_count_;) {
    const std::size_t n = std::min<std::size_t>(
        kChunk, static_cast<std::size_t>(device_count_ - base) + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId id = base + static_cast<net::NodeId>(i);
      jobs[i] = {&mac_for(id), expected_[id - 1], chal_view};
    }
    backend.hmac_batch(jobs.data(), n, outs.data());
    for (std::size_t i = 0; i < n; ++i) xor_inplace(acc, outs[i].view());
    base += static_cast<net::NodeId>(n);
  }
  return acc;
}

bool Verifier::verify(BytesView h_s, std::uint32_t chal) const {
  return crypto::ct_equal(h_s, expected_result(chal));
}

Verifier::IdentifyOutcome Verifier::verify_identify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  IdentifyOutcome out;
  std::vector<bool> seen(device_count_ + 1, false);
  std::uint8_t chal_le[4];
  store_u32le(chal_le, chal);
  const BytesView chal_view(chal_le, 4);
  // All valid reports share the round challenge, so their expected
  // tokens form one batch for the active backend.
  std::vector<crypto::VerifyJob> jobs;
  std::vector<net::NodeId> job_ids;
  jobs.reserve(reports.size());
  job_ids.reserve(reports.size());
  for (const auto& report : reports) {
    if (report.id == 0 || report.id > device_count_) continue;
    seen[report.id] = true;
    jobs.push_back({&mac_for(report.id), expected_[report.id - 1], chal_view,
                    report.token});
    job_ids.push_back(report.id);
  }
  std::vector<std::uint8_t> ok(jobs.size());
  crypto::active_backend().verify_tokens_batch(jobs.data(), jobs.size(),
                                               ok.data());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!ok[i]) out.bad.push_back(job_ids[i]);
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    if (!seen[id]) out.missing.push_back(id);
  }
  return out;
}

const char* Verifier::device_status_name(DeviceStatus status) noexcept {
  switch (status) {
    case DeviceStatus::kHealthy: return "healthy";
    case DeviceStatus::kUnreachable: return "unreachable";
    case DeviceStatus::kUntrusted: return "untrusted";
    case DeviceStatus::kRebooted: return "rebooted";
  }
  return "?";
}

Verifier::Classification Verifier::classify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  Classification out;
  out.enabled = true;
  out.status.assign(device_count_, DeviceStatus::kUnreachable);

  // Pass 1: assign the verdicts that need no token (unreachable entries
  // and late joiners whose tick predates the challenge — a stale tick
  // would let Adv replay a pre-infection token, so those are untrusted
  // WITHOUT computing the expected token, exactly as the scalar path
  // short-circuited) and queue one token job per remaining entry.
  struct PendingToken {
    std::size_t report_idx;
    DeviceStatus on_match;  // mismatch is always kUntrusted
  };
  std::vector<DeviceStatus> verdict(reports.size());
  std::vector<bool> has_verdict(reports.size(), false);
  std::vector<PendingToken> pending;
  std::vector<std::array<std::uint8_t, 4>> tick_bytes;  // stable storage
  pending.reserve(reports.size());
  tick_bytes.reserve(reports.size());
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const auto& report = reports[r];
    if (report.id == 0 || report.id > device_count_) continue;
    switch (report.status) {
      case DeviceReportStatus::kEntryOk:
        pending.push_back({r, DeviceStatus::kHealthy});
        tick_bytes.push_back(u32le_bytes(chal));
        break;
      case DeviceReportStatus::kEntryLate:
        // A late joiner attested its *current* tick, which must not
        // predate the challenge. Valid evidence at a later tick proves
        // the state but not liveness through the round: rebooted.
        if (report.tick >= chal) {
          pending.push_back({r, DeviceStatus::kRebooted});
          tick_bytes.push_back(u32le_bytes(report.tick));
        } else {
          verdict[r] = DeviceStatus::kUntrusted;
          has_verdict[r] = true;
        }
        break;
      case DeviceReportStatus::kEntryRebooted:
        pending.push_back({r, DeviceStatus::kRebooted});
        tick_bytes.push_back(u32le_bytes(chal));
        break;
      case DeviceReportStatus::kEntryUnreachable:
        verdict[r] = DeviceStatus::kUnreachable;
        has_verdict[r] = true;
        break;
    }
  }

  // Pass 2: one backend batch for every token-bearing entry.
  std::vector<crypto::VerifyJob> jobs(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto& report = reports[pending[i].report_idx];
    jobs[i] = {&mac_for(report.id), expected_[report.id - 1],
               BytesView(tick_bytes[i].data(), 4), report.token};
  }
  std::vector<std::uint8_t> ok(jobs.size());
  crypto::active_backend().verify_tokens_batch(jobs.data(), jobs.size(),
                                               ok.data());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    verdict[pending[i].report_idx] =
        ok[i] ? pending[i].on_match : DeviceStatus::kUntrusted;
    has_verdict[pending[i].report_idx] = true;
  }

  // Apply in report order so a later entry for the same device still
  // overwrites an earlier one, as the serial loop did.
  for (std::size_t r = 0; r < reports.size(); ++r) {
    if (has_verdict[r]) out.status[reports[r].id - 1] = verdict[r];
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    switch (out.status[id - 1]) {
      case DeviceStatus::kHealthy: ++out.healthy; break;
      case DeviceStatus::kUnreachable:
        ++out.unreachable;
        out.unreachable_ids.push_back(id);
        break;
      case DeviceStatus::kUntrusted:
        ++out.untrusted;
        out.untrusted_ids.push_back(id);
        break;
      case DeviceStatus::kRebooted:
        ++out.rebooted;
        out.rebooted_ids.push_back(id);
        break;
    }
  }
  return out;
}

}  // namespace cra::sap
