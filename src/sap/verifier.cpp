#include "sap/verifier.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"

namespace cra::sap {

Verifier::Verifier(SapConfig config, std::uint32_t device_count,
                   BytesView master)
    : config_(config),
      device_count_(device_count),
      master_(master.begin(), master.end()),
      expected_(device_count) {
  if (device_count_ == 0) {
    throw std::invalid_argument("Verifier: empty attestation group");
  }
  if (master_.empty()) {
    throw std::invalid_argument("Verifier: empty master secret");
  }
}

void Verifier::check_id(net::NodeId id) const {
  if (id == 0 || id > device_count_) {
    throw std::out_of_range("Verifier: device id out of range");
  }
}

Bytes Verifier::device_key(net::NodeId id) const {
  check_id(id);
  return crypto::derive_device_key(master_, id, config_.token_size());
}

Bytes Verifier::request_auth_key() const {
  if (!config_.authenticate_requests) return {};
  return crypto::hkdf(master_, /*salt=*/{},
                      to_bytes("sap-request-auth-key"), 32);
}

void Verifier::set_expected_content(net::NodeId id, Bytes content) {
  check_id(id);
  expected_[id - 1] = std::move(content);
}

const Bytes& Verifier::expected_content(net::NodeId id) const {
  check_id(id);
  return expected_[id - 1];
}

Bytes Verifier::expected_token(net::NodeId id, std::uint32_t chal) const {
  check_id(id);
  Bytes message = expected_[id - 1];
  append_u32le(message, chal);
  return crypto::hmac(config_.alg, device_key(id), message);
}

Bytes Verifier::expected_result(std::uint32_t chal) const {
  Bytes acc(config_.token_size(), 0);
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    xor_inplace(acc, expected_token(id, chal));
  }
  return acc;
}

bool Verifier::verify(BytesView h_s, std::uint32_t chal) const {
  return crypto::ct_equal(h_s, expected_result(chal));
}

Verifier::IdentifyOutcome Verifier::verify_identify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  IdentifyOutcome out;
  std::vector<bool> seen(device_count_ + 1, false);
  for (const auto& report : reports) {
    if (report.id == 0 || report.id > device_count_) continue;
    seen[report.id] = true;
    if (!crypto::ct_equal(report.token, expected_token(report.id, chal))) {
      out.bad.push_back(report.id);
    }
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    if (!seen[id]) out.missing.push_back(id);
  }
  return out;
}

const char* Verifier::device_status_name(DeviceStatus status) noexcept {
  switch (status) {
    case DeviceStatus::kHealthy: return "healthy";
    case DeviceStatus::kUnreachable: return "unreachable";
    case DeviceStatus::kUntrusted: return "untrusted";
    case DeviceStatus::kRebooted: return "rebooted";
  }
  return "?";
}

Verifier::Classification Verifier::classify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  Classification out;
  out.enabled = true;
  out.status.assign(device_count_, DeviceStatus::kUnreachable);
  for (const auto& report : reports) {
    if (report.id == 0 || report.id > device_count_) continue;
    DeviceStatus verdict = DeviceStatus::kUntrusted;
    switch (report.status) {
      case DeviceReportStatus::kEntryOk:
        verdict = crypto::ct_equal(report.token, expected_token(report.id, chal))
                      ? DeviceStatus::kHealthy
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryLate:
        // A late joiner attested its *current* tick, which must not
        // predate the challenge (a stale tick would let Adv replay a
        // pre-infection token). Valid evidence at a later tick proves
        // the state but not liveness through the round: rebooted.
        verdict = (report.tick >= chal &&
                   crypto::ct_equal(report.token,
                                    expected_token(report.id, report.tick)))
                      ? DeviceStatus::kRebooted
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryRebooted:
        verdict = crypto::ct_equal(report.token, expected_token(report.id, chal))
                      ? DeviceStatus::kRebooted
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryUnreachable:
        verdict = DeviceStatus::kUnreachable;
        break;
    }
    out.status[report.id - 1] = verdict;
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    switch (out.status[id - 1]) {
      case DeviceStatus::kHealthy: ++out.healthy; break;
      case DeviceStatus::kUnreachable:
        ++out.unreachable;
        out.unreachable_ids.push_back(id);
        break;
      case DeviceStatus::kUntrusted:
        ++out.untrusted;
        out.untrusted_ids.push_back(id);
        break;
      case DeviceStatus::kRebooted:
        ++out.rebooted;
        out.rebooted_ids.push_back(id);
        break;
    }
  }
  return out;
}

}  // namespace cra::sap
