#include "sap/verifier.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"

namespace cra::sap {

Verifier::Verifier(SapConfig config, std::uint32_t device_count,
                   BytesView master)
    : config_(config),
      device_count_(device_count),
      master_(master.begin(), master.end()),
      expected_(device_count),
      mac_cache_(device_count) {
  if (device_count_ == 0) {
    throw std::invalid_argument("Verifier: empty attestation group");
  }
  if (master_.empty()) {
    throw std::invalid_argument("Verifier: empty master secret");
  }
}

void Verifier::check_id(net::NodeId id) const {
  if (id == 0 || id > device_count_) {
    throw std::out_of_range("Verifier: device id out of range");
  }
}

Bytes Verifier::device_key(net::NodeId id) const {
  check_id(id);
  return crypto::derive_device_key(master_, id, config_.token_size());
}

Bytes Verifier::request_auth_key() const {
  if (!config_.authenticate_requests) return {};
  return crypto::hkdf(master_, /*salt=*/{},
                      to_bytes("sap-request-auth-key"), 32);
}

void Verifier::set_expected_content(net::NodeId id, Bytes content) {
  check_id(id);
  expected_[id - 1] = std::move(content);
}

const Bytes& Verifier::expected_content(net::NodeId id) const {
  check_id(id);
  return expected_[id - 1];
}

const crypto::PrecomputedMac& Verifier::mac_for(net::NodeId id) const {
  auto& cache = mac_cache_[id - 1];
  if (!cache.ready()) {
    Bytes key = device_key(id);
    cache.init(config_.alg, key);
    crypto::secure_wipe(key);
  }
  return cache;
}

void Verifier::expected_token_into(net::NodeId id, std::uint32_t chal,
                                   crypto::MacBuf& out) const {
  check_id(id);
  std::uint8_t chal_le[4];
  store_u32le(chal_le, chal);
  mac_for(id).mac_into(expected_[id - 1], BytesView(chal_le, 4), out);
}

Bytes Verifier::expected_token(net::NodeId id, std::uint32_t chal) const {
  crypto::MacBuf buf;
  expected_token_into(id, chal, buf);
  return Bytes(buf.bytes.begin(), buf.bytes.begin() + buf.len);
}

Bytes Verifier::expected_result(std::uint32_t chal) const {
  Bytes acc(config_.token_size(), 0);
  crypto::MacBuf buf;
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    expected_token_into(id, chal, buf);
    xor_inplace(acc, buf.view());
  }
  return acc;
}

bool Verifier::verify(BytesView h_s, std::uint32_t chal) const {
  return crypto::ct_equal(h_s, expected_result(chal));
}

Verifier::IdentifyOutcome Verifier::verify_identify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  IdentifyOutcome out;
  std::vector<bool> seen(device_count_ + 1, false);
  for (const auto& report : reports) {
    if (report.id == 0 || report.id > device_count_) continue;
    seen[report.id] = true;
    if (!crypto::ct_equal(report.token, expected_token(report.id, chal))) {
      out.bad.push_back(report.id);
    }
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    if (!seen[id]) out.missing.push_back(id);
  }
  return out;
}

const char* Verifier::device_status_name(DeviceStatus status) noexcept {
  switch (status) {
    case DeviceStatus::kHealthy: return "healthy";
    case DeviceStatus::kUnreachable: return "unreachable";
    case DeviceStatus::kUntrusted: return "untrusted";
    case DeviceStatus::kRebooted: return "rebooted";
  }
  return "?";
}

Verifier::Classification Verifier::classify(
    const std::vector<DeviceReport>& reports, std::uint32_t chal) const {
  Classification out;
  out.enabled = true;
  out.status.assign(device_count_, DeviceStatus::kUnreachable);
  for (const auto& report : reports) {
    if (report.id == 0 || report.id > device_count_) continue;
    DeviceStatus verdict = DeviceStatus::kUntrusted;
    switch (report.status) {
      case DeviceReportStatus::kEntryOk:
        verdict = crypto::ct_equal(report.token, expected_token(report.id, chal))
                      ? DeviceStatus::kHealthy
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryLate:
        // A late joiner attested its *current* tick, which must not
        // predate the challenge (a stale tick would let Adv replay a
        // pre-infection token). Valid evidence at a later tick proves
        // the state but not liveness through the round: rebooted.
        verdict = (report.tick >= chal &&
                   crypto::ct_equal(report.token,
                                    expected_token(report.id, report.tick)))
                      ? DeviceStatus::kRebooted
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryRebooted:
        verdict = crypto::ct_equal(report.token, expected_token(report.id, chal))
                      ? DeviceStatus::kRebooted
                      : DeviceStatus::kUntrusted;
        break;
      case DeviceReportStatus::kEntryUnreachable:
        verdict = DeviceStatus::kUnreachable;
        break;
    }
    out.status[report.id - 1] = verdict;
  }
  for (net::NodeId id = 1; id <= device_count_; ++id) {
    switch (out.status[id - 1]) {
      case DeviceStatus::kHealthy: ++out.healthy; break;
      case DeviceStatus::kUnreachable:
        ++out.unreachable;
        out.unreachable_ids.push_back(id);
        break;
      case DeviceStatus::kUntrusted:
        ++out.untrusted;
        out.untrusted_ids.push_back(id);
        break;
      case DeviceStatus::kRebooted:
        ++out.rebooted;
        out.rebooted_ids.push_back(id);
        break;
    }
  }
  return out;
}

}  // namespace cra::sap
