#include "sap/heartbeat.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/kdf.hpp"

namespace cra::sap {
namespace {

enum HeartbeatMessageKind : std::uint32_t {
  kBeatMsg = 10,
  kCollectMsg = 11,
  kLogMsg = 12,
};

}  // namespace

HeartbeatSimulation::HeartbeatSimulation(HeartbeatConfig config,
                                         net::Tree tree, std::uint64_t seed)
    : config_(config),
      tree_(std::move(tree)),
      scheduler_(),
      network_(scheduler_, config.link),
      master_(crypto::SecureRandom(seed ^ 0x6265'6174'6b65'79ULL)
                  .bytes(32)),
      devices_(tree_.device_count()),
      last_seen_(tree_.device_count() + 1) {
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    Dev& d = dev(id);
    d.beat_key = crypto::derive_device_key(
        master_, id, crypto::digest_size(config_.alg), "heartbeat-key");
    d.beat_mac.init(config_.alg, d.beat_key);
    last_seen_[id] = scheduler_.now();  // joined alive at deployment
  }
  network_.set_handler([this](const net::Message& m) { on_message(m); });
}

HeartbeatSimulation HeartbeatSimulation::balanced(HeartbeatConfig config,
                                                  std::uint32_t devices,
                                                  std::uint64_t seed) {
  return HeartbeatSimulation(
      config, net::balanced_kary_tree(devices, config.tree_arity), seed);
}

void HeartbeatSimulation::capture_device(net::NodeId id) {
  dev(id).captured = true;
}

void HeartbeatSimulation::release_device(net::NodeId id) {
  dev(id).captured = false;
}

bool HeartbeatSimulation::is_captured(net::NodeId id) const {
  return dev(id).captured;
}

void HeartbeatSimulation::schedule_beat(net::NodeId id) {
  scheduler_.schedule_after(config_.period, [this, id] {
    if (scheduler_.now() > monitor_until_) return;  // monitoring window over
    Dev& d = dev(id);
    if (!d.captured) {
      Bytes beat;
      append_u32le(beat, id);
      append_u32le(beat, ++d.seq);
      crypto::MacBuf mac;
      d.beat_mac.mac_into(beat, mac);
      beat.insert(beat.end(), mac.bytes.begin(),
                  mac.bytes.begin() + config_.mac_size);
      network_.send(id, tree_.parent(id), kBeatMsg, std::move(beat));
    }
    schedule_beat(id);
  });
}

void HeartbeatSimulation::run_monitoring(sim::Duration duration) {
  monitor_until_ = scheduler_.now() + duration;
  for (net::NodeId id = 1; id <= device_count(); ++id) {
    schedule_beat(id);
  }
  scheduler_.run_until(monitor_until_);
}

void HeartbeatSimulation::on_message(const net::Message& msg) {
  switch (msg.kind) {
    case kBeatMsg:
      handle_beat(msg.dst, msg);
      break;
    case kCollectMsg:
      if (msg.dst >= 1 && msg.dst <= device_count()) {
        handle_collect(msg.dst);
      }
      break;
    case kLogMsg:
      handle_log(msg.dst, msg);
      break;
    default:
      break;
  }
}

void HeartbeatSimulation::handle_beat(net::NodeId parent,
                                      const net::Message& msg) {
  // A captured relay drops everything passing through it.
  if (parent != 0 && dev(parent).captured) return;
  if (msg.payload.size() != config_.beat_size()) return;
  const std::uint32_t child = read_u32le(msg.payload, 0);
  if (child == 0 || child > device_count()) return;

  // The claimed identity is authenticated by the MAC alone — radio
  // source addresses are spoofable and carry no weight here.
  crypto::MacBuf expected;
  dev(child).beat_mac.mac_into(BytesView(msg.payload.data(), 8), expected);
  if (!crypto::ct_equal(
          BytesView(msg.payload.data() + 8, config_.mac_size),
          BytesView(expected.bytes.data(), config_.mac_size))) {
    ++forged_;  // presence cannot be forged without the pairwise key
    return;
  }
  last_seen_[child] = scheduler_.now();
}

void HeartbeatSimulation::absence_entries(net::NodeId id,
                                          std::vector<AbsenceReport>* out) {
  for (net::NodeId child : tree_.children(id)) {
    const sim::Duration gap = scheduler_.now() - last_seen_[child];
    if (gap > config_.absence_threshold) {
      out->push_back({child, gap});
    }
  }
}

Bytes HeartbeatSimulation::encode_log(
    const std::vector<AbsenceReport>& entries) const {
  Bytes out;
  out.reserve(entries.size() * 8);
  for (const AbsenceReport& e : entries) {
    append_u32le(out, e.device);
    append_u32le(out, static_cast<std::uint32_t>(e.gap.ms()));
  }
  return out;
}

bool HeartbeatSimulation::decode_log(BytesView payload,
                                     std::vector<AbsenceReport>* out) const {
  if (payload.size() % 8 != 0) return false;
  for (std::size_t off = 0; off < payload.size(); off += 8) {
    AbsenceReport e;
    e.device = read_u32le(payload, off);
    e.gap = sim::Duration::from_ms(read_u32le(payload, off + 4));
    out->push_back(e);
  }
  return true;
}

void HeartbeatSimulation::handle_collect(net::NodeId id) {
  Dev& d = dev(id);
  if (d.captured || d.collecting) return;
  d.collecting = true;
  d.gathered.clear();
  d.waiting = 0;
  for (net::NodeId child : tree_.children(id)) {
    network_.send(id, child, kCollectMsg, Bytes{});
    ++d.waiting;
  }
  absence_entries(id, &d.gathered);
  // A captured (or silent) child cannot answer the collect sweep; its
  // own gap entry above covers it. Wait only for children that are
  // *not* already flagged absent.
  for (const AbsenceReport& e : d.gathered) {
    if (d.waiting > 0) --d.waiting;
    (void)e;
  }
  if (d.waiting == 0) forward_log(id);
}

void HeartbeatSimulation::handle_log(net::NodeId id, const net::Message& msg) {
  if (id == 0) {
    std::vector<AbsenceReport> entries;
    if (decode_log(msg.payload, &entries)) {
      root_gathered_.insert(root_gathered_.end(), entries.begin(),
                            entries.end());
    }
    if (root_waiting_ > 0) --root_waiting_;
    return;
  }
  Dev& d = dev(id);
  if (!d.collecting || d.captured) return;
  std::vector<AbsenceReport> entries;
  if (decode_log(msg.payload, &entries)) {
    d.gathered.insert(d.gathered.end(), entries.begin(), entries.end());
  }
  if (d.waiting > 0) --d.waiting;
  if (d.waiting == 0) forward_log(id);
}

void HeartbeatSimulation::forward_log(net::NodeId id) {
  Dev& d = dev(id);
  d.collecting = false;
  network_.send(id, tree_.parent(id), kLogMsg, encode_log(d.gathered));
}

std::vector<AbsenceReport> HeartbeatSimulation::collect() {
  if (collect_active_) {
    throw std::logic_error("HeartbeatSimulation: collect already running");
  }
  collect_active_ = true;
  root_gathered_.clear();
  root_waiting_ = 0;

  // Vrf-side absence view of its direct children.
  std::vector<AbsenceReport> vrf_entries;
  for (net::NodeId child : tree_.children(0)) {
    const sim::Duration gap = scheduler_.now() - last_seen_[child];
    if (gap > config_.absence_threshold) {
      root_gathered_.push_back({child, gap});
    } else {
      network_.send(0, child, kCollectMsg, Bytes{});
      ++root_waiting_;
    }
  }
  scheduler_.run();  // the sweep drains (tree depth x small messages)

  std::sort(root_gathered_.begin(), root_gathered_.end(),
            [](const AbsenceReport& a, const AbsenceReport& b) {
              return a.device < b.device;
            });
  collect_active_ = false;
  return root_gathered_;
}

}  // namespace cra::sap
