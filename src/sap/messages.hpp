// Wire messages of SAP.
//
// Two message kinds flow in a round (paper Figure 1): the challenge
// (request, root -> leaves) and the token (report, leaves -> root).
// Payload layouts are fixed-size so the network utilization matches the
// model: |chal| = |token| = l bits.
//
//   chal  = tick(4, LE) || auth(16)          -- auth is HMAC_{K_req}(tick)
//                                               truncated, or zero padding
//   token = l bytes                           -- kBinary
//   token = l bytes || count(4, LE)           -- kCount
//   token = repeated { id(4, LE) || l bytes } -- kIdentify (one entry per
//                                                device in the subtree)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "sap/config.hpp"

namespace cra::sap {

enum MessageKind : std::uint32_t {
  kChalMsg = 1,
  kTokenMsg = 2,
  kRepollMsg = 3,  // lossy-network extension: parent re-requests a token
};

constexpr std::size_t kChalAuthSize = 16;

/// Build a challenge payload. `auth_key` empty -> zero padding.
Bytes encode_chal(std::uint32_t tick, BytesView auth_key,
                  std::size_t chal_size);

struct ChalView {
  std::uint32_t tick = 0;
  Bytes auth;  // kChalAuthSize bytes
};

/// Parse; returns nullopt when the payload is malformed (too short).
std::optional<ChalView> decode_chal(BytesView payload, std::size_t chal_size);

/// Verify the challenge authenticator (constant-time).
bool chal_authentic(const ChalView& chal, BytesView auth_key);

/// Per-entry status on the adaptive-timeout (degraded-mode) wire format.
/// Legacy kIdentify entries carry no status byte; decode_identify leaves
/// entries at kEntryOk.
enum class DeviceReportStatus : std::uint8_t {
  kEntryOk = 0,           // token computed in sync at the round tick
  kEntryLate = 1,         // device joined via re-poll; token for `tick`
  kEntryUnreachable = 2,  // parent gave up after its re-poll budget
  kEntryRebooted = 3,     // device restarted since the previous round
};

const char* entry_status_name(DeviceReportStatus status) noexcept;

/// kIdentify entries. `status`/`tick` ride after `token` so the legacy
/// two-field aggregate init keeps working; they only hit the wire on the
/// extended (adaptive) format.
struct DeviceReport {
  std::uint32_t id = 0;
  Bytes token;  // l bytes
  DeviceReportStatus status = DeviceReportStatus::kEntryOk;
  std::uint32_t tick = 0;  // tick the token was computed at (kEntryLate)
};

Bytes encode_identify(const std::vector<DeviceReport>& reports,
                      std::size_t token_size);
std::optional<std::vector<DeviceReport>> decode_identify(
    BytesView payload, std::size_t token_size);

/// Extended kIdentify wire format used by adaptive-timeout rounds:
///   entry = id(4, LE) || status(1) || tick(4, LE) || token(l bytes)
/// Unreachable entries still carry a (zero) token so entries stay
/// fixed-size and the report-chain deadline math holds.
Bytes encode_identify_ex(const std::vector<DeviceReport>& reports,
                         std::size_t token_size);
std::optional<std::vector<DeviceReport>> decode_identify_ex(
    BytesView payload, std::size_t token_size);

/// kCount payload helpers.
Bytes encode_count_token(BytesView token, std::uint32_t count);
struct CountToken {
  Bytes token;
  std::uint32_t count = 0;
};
std::optional<CountToken> decode_count_token(BytesView payload,
                                             std::size_t token_size);

}  // namespace cra::sap
