#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/json.hpp"

namespace cra::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

// Lanes in the exported trace: Chrome/Perfetto group events by pid, so
// wall-clock and simulated-time spans become two named "processes" that
// can be compared side by side without the axes fighting each other.
constexpr std::uint32_t kWallPid = 1;
constexpr std::uint32_t kSimPid = 2;

void write_complete_event(JsonWriter& w, const std::string& name,
                          std::uint32_t pid, std::uint32_t tid, double ts_us,
                          double dur_us) {
  w.begin_object();
  w.field("name", name);
  w.field("ph", "X");
  w.field("pid", static_cast<std::uint64_t>(pid));
  w.field("tid", static_cast<std::uint64_t>(tid));
  w.field("ts", ts_us);
  w.field("dur", dur_us);
  w.end_object();
}

void write_process_name(JsonWriter& w, std::uint32_t pid, const char* name) {
  w.begin_object();
  w.field("name", "process_name");
  w.field("ph", "M");
  w.field("pid", static_cast<std::uint64_t>(pid));
  w.field("tid", std::uint64_t{0});
  w.key("args").begin_object();
  w.field("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

double TraceSink::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::record(TraceEvent ev) {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint32_t tid = 0;
  for (; tid < thread_ids_.size(); ++tid) {
    if (thread_ids_[tid] == self) break;
  }
  if (tid == thread_ids_.size()) thread_ids_.push_back(self);
  ev.tid = tid;
  events_.push_back(std::move(ev));
}

void TraceSink::sim_span(std::string name, std::int64_t begin_ns,
                         std::int64_t end_ns) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.sim_ts_ns = begin_ns;
  ev.sim_dur_ns = end_ns - begin_ns;
  record(std::move(ev));
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  write_process_name(w, kWallPid, "wall clock");
  write_process_name(w, kSimPid, "simulated time");
  for (const TraceEvent& ev : events_) {
    if (ev.wall_ts_us >= 0.0) {
      write_complete_event(w, ev.name, kWallPid, ev.tid, ev.wall_ts_us,
                           ev.wall_dur_us);
    }
    if (ev.sim_ts_ns >= 0) {
      write_complete_event(w, ev.name, kSimPid, ev.tid,
                           static_cast<double>(ev.sim_ts_ns) / 1e3,
                           static_cast<double>(ev.sim_dur_ns) / 1e3);
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool TraceSink::write_file(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = n == doc.size() && std::fclose(f) == 0;
  if (!ok && n != doc.size()) std::fclose(f);
  return ok;
}

TraceSink* global_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

void set_global_sink(TraceSink* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

Span::Span(const char* name, TraceSink* sink) : sink_(sink), name_(name) {
  if (sink_ != nullptr) start_us_ = sink_->now_us();
}

Span::~Span() {
  if (sink_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.wall_ts_us = start_us_;
  ev.wall_dur_us = sink_->now_us() - start_us_;
  ev.sim_ts_ns = sim_begin_ns_;
  ev.sim_dur_ns = sim_end_ns_ - sim_begin_ns_;
  sink_->record(std::move(ev));
}

}  // namespace cra::obs
