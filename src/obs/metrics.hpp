// Metrics registry: named counters, gauges, and log-scale histograms.
//
// The paper's evaluation (Figs. 3a-3c, Tables 2-3) is entirely about
// measured quantities — per-phase runtime, bytes on the wire, per-device
// energy — and the benches need those numbers to be *trustworthy* under
// sharded parallel execution. This registry is the single accounting
// surface the network, protocol, and bench layers write to:
//
//   * Registration (`counter("net.bytes_transmitted")`) happens once at
//     setup and may allocate; the returned handle is a stable pointer
//     into the registry, and every hot-path update through it is plain
//     integer arithmetic — no hashing, no locking, no allocation.
//   * The sharded engine (sim::ParallelScheduler) owns one registry per
//     shard; each is written only by its shard's worker, and they merge
//     in fixed shard order at the run() barrier. Merging is commutative
//     for every instrument (counters add, gauges take max, histograms
//     add bucket-wise), so threads=1 and threads=N report identical
//     values for any metric whose event stream is itself deterministic
//     (see docs/observability.md for the exact guarantee).
//   * JSON export iterates the sorted name map, so serialized output is
//     byte-stable across runs and thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/json.hpp"

namespace cra::obs {

/// Monotonically increasing event count. Merge: sum.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value. Merge: maximum over the set gauges
/// (the natural reduction for "latest event time" / watermark metrics,
/// which is what the protocol layers use gauges for).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    set_ = true;
  }
  /// Raise to `v` if `v` is larger (or the gauge was never set).
  void max_in(std::int64_t v) noexcept {
    if (!set_ || v > value_) set(v);
  }
  std::int64_t value() const noexcept { return value_; }
  bool is_set() const noexcept { return set_; }
  void reset() noexcept {
    value_ = 0;
    set_ = false;
  }

 private:
  std::int64_t value_ = 0;
  bool set_ = false;
};

/// Fixed-bucket log2 histogram: bucket i counts samples whose value has
/// bit-width i (i.e. v in [2^(i-1), 2^i), bucket 0 = {0}). Recording is
/// allocation-free and branch-light; 65 buckets cover the whole uint64
/// range, which is plenty for byte counts and durations. Merge: buckets
/// add, min/max fold.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }
  void merge_from(const Histogram& other) noexcept;
  /// Fold raw instrument state (a decoded binary snapshot) in — same
  /// semantics as merge_from. Used by MetricsRegistry::merge_binary.
  void merge_raw(const std::array<std::uint64_t, kBuckets>& buckets,
                 std::uint64_t count, std::uint64_t sum, std::uint64_t min,
                 std::uint64_t max) noexcept;
  void reset() noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference is stable for the life of
  /// the registry (node-based map), so call sites cache it once and hit
  /// plain memory afterwards.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-only lookups; a missing name reads as zero/unset.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  std::int64_t gauge_value(std::string_view name) const noexcept;
  const Histogram* find_histogram(std::string_view name) const noexcept;

  /// Fold `other` into this registry: counters add, gauges max, and
  /// histograms add bucket-wise, under `prefix` + name. Merging shard
  /// registries in any order yields the same totals (every reduction is
  /// commutative and associative); the engine still merges in fixed
  /// shard order so even non-commutative future instruments would stay
  /// deterministic.
  void merge_from(const MetricsRegistry& other, std::string_view prefix = {});

  /// Zero every instrument, keeping registrations (and thus every cached
  /// handle) intact. Used at round boundaries.
  void reset_values() noexcept;

  /// --- Binary snapshot (multi-process engine) ---
  /// The multi-process sharded engine ships each shard's registry to its
  /// peers through a fixed shared-memory window at the end of every run;
  /// encode_binary appends a self-delimiting little-endian image of all
  /// instruments to `out`, and merge_binary folds such an image into
  /// this registry with exactly merge_from's semantics (counters add,
  /// gauges max over set gauges, histograms merge). The format is
  /// private to one build of one binary — both sides are forks of the
  /// same process — and is versioned only by that. merge_binary throws
  /// std::runtime_error on a truncated or malformed image.
  void encode_binary(Bytes& out) const;
  void merge_binary(BytesView in);

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// in sorted order — byte-stable across runs and thread counts.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  // std::map: sorted iteration gives deterministic export, node-based
  // storage gives stable handle addresses. Lookups are registration-time
  // only, so the O(log n) compare cost never sits on a hot path.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace cra::obs
