// Phase-scoped tracing with Chrome trace_event export.
//
// A TraceSink collects "complete" events carrying BOTH clocks that
// matter to a simulator: wall time (how long the host actually took —
// what you optimize) and simulated time (what the protocol experienced —
// what the paper reports). Export is the Chrome trace_event JSON format,
// so a million-device sweep opens directly in chrome://tracing or
// Perfetto: wall-clock spans land in the "wall clock" process lane,
// simulated-time spans in the "simulated time" lane (its microsecond
// axis reads as simulated microseconds).
//
// Spans are scoped: `OBS_SPAN("sap.round")` records the wall-clock
// duration of the enclosing block into the process-wide sink, tagging
// it with the recording thread; `span.sim_range(begin, end)` attaches
// the simulated-time window so the same span shows up on both lanes.
// With no sink installed (the default — benches install one only under
// --trace-out) a span is a pointer test and two clock reads; protocol
// hot paths (per-message handlers) are deliberately not spanned.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cra::obs {

struct TraceEvent {
  std::string name;
  // Wall-clock complete event: microseconds since the sink was created.
  // Negative ts = no wall-clock component.
  double wall_ts_us = -1.0;
  double wall_dur_us = 0.0;
  // Simulated-time complete event, nanoseconds of simulation time.
  // Negative ts = no simulated-time component.
  std::int64_t sim_ts_ns = -1;
  std::int64_t sim_dur_ns = 0;
  std::uint32_t tid = 0;  // assigned per recording thread
};

class TraceSink {
 public:
  TraceSink();

  /// Thread-safe append; `ev.tid` is overwritten with the stable index
  /// of the calling thread (first-record order).
  void record(TraceEvent ev);

  /// Record a simulated-time-only span (no wall component) — used for
  /// protocol phases, whose boundaries are simulation timestamps known
  /// after the run rather than host-clock scopes.
  void sim_span(std::string name, std::int64_t begin_ns, std::int64_t end_ns);

  std::size_t size() const;
  /// Microseconds of wall time since the sink's epoch.
  double now_us() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string to_json() const;
  /// Write to_json() to `path`; returns false (and leaves no partial
  /// file guarantee) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::thread::id> thread_ids_;  // index = stable tid
  std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide sink used by OBS_SPAN and the protocol layers. Null by
/// default; benches install one when --trace-out is given (before any
/// worker threads exist) and uninstall it before the sink dies.
TraceSink* global_sink() noexcept;
void set_global_sink(TraceSink* sink) noexcept;

/// RAII wall-clock span; see the header comment. Records on destruction
/// iff a sink is attached.
class Span {
 public:
  explicit Span(const char* name) : Span(name, global_sink()) {}
  Span(const char* name, TraceSink* sink);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach the simulated-time window this scope covered.
  void sim_range(std::int64_t begin_ns, std::int64_t end_ns) noexcept {
    sim_begin_ns_ = begin_ns;
    sim_end_ns_ = end_ns;
  }

 private:
  TraceSink* sink_;
  const char* name_;
  double start_us_ = 0.0;
  std::int64_t sim_begin_ns_ = -1;
  std::int64_t sim_end_ns_ = -1;
};

#define CRA_OBS_CONCAT2(a, b) a##b
#define CRA_OBS_CONCAT(a, b) CRA_OBS_CONCAT2(a, b)
/// Scoped span recording the enclosing block into the global sink.
#define OBS_SPAN(name) \
  ::cra::obs::Span CRA_OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace cra::obs
