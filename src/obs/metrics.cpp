#include "obs/metrics.hpp"

#include <bit>

namespace cra::obs {

void Histogram::record(std::uint64_t v) noexcept {
  ++buckets_[static_cast<std::size_t>(std::bit_width(v))];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

std::uint64_t MetricsRegistry::counter_value(
    std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other,
                                 std::string_view prefix) {
  std::string name;
  const auto prefixed = [&](const std::string& n) -> std::string_view {
    if (prefix.empty()) return n;
    name.assign(prefix);
    name.append(n);
    return name;
  };
  for (const auto& [n, c] : other.counters_) {
    counter(prefixed(n)).inc(c.value());
  }
  for (const auto& [n, g] : other.gauges_) {
    if (g.is_set()) gauge(prefixed(n)).max_in(g.value());
  }
  for (const auto& [n, h] : other.histograms_) {
    histogram(prefixed(n)).merge_from(h);
  }
}

void MetricsRegistry::reset_values() noexcept {
  for (auto& [n, c] : counters_) c.reset();
  for (auto& [n, g] : gauges_) g.reset();
  for (auto& [n, h] : histograms_) h.reset();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [n, c] : counters_) w.field(n, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [n, g] : gauges_) w.field(n, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [n, h] : histograms_) {
    w.key(n).begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.key("buckets").begin_object();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets()[i] != 0) {
        w.field(std::to_string(i), h.buckets()[i]);
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace cra::obs
