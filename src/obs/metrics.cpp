#include "obs/metrics.hpp"

#include <bit>
#include <stdexcept>

namespace cra::obs {

void Histogram::record(std::uint64_t v) noexcept {
  ++buckets_[static_cast<std::size_t>(std::bit_width(v))];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::merge_raw(const std::array<std::uint64_t, kBuckets>& buckets,
                          std::uint64_t count, std::uint64_t sum,
                          std::uint64_t min, std::uint64_t max) noexcept {
  if (count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += buckets[i];
  if (count_ == 0 || min < min_) min_ = min;
  if (max > max_) max_ = max;
  count_ += count;
  sum_ += sum;
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

std::uint64_t MetricsRegistry::counter_value(
    std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const noexcept {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other,
                                 std::string_view prefix) {
  std::string name;
  const auto prefixed = [&](const std::string& n) -> std::string_view {
    if (prefix.empty()) return n;
    name.assign(prefix);
    name.append(n);
    return name;
  };
  for (const auto& [n, c] : other.counters_) {
    counter(prefixed(n)).inc(c.value());
  }
  for (const auto& [n, g] : other.gauges_) {
    if (g.is_set()) gauge(prefixed(n)).max_in(g.value());
  }
  for (const auto& [n, h] : other.histograms_) {
    histogram(prefixed(n)).merge_from(h);
  }
}

void MetricsRegistry::reset_values() noexcept {
  for (auto& [n, c] : counters_) c.reset();
  for (auto& [n, g] : gauges_) g.reset();
  for (auto& [n, h] : histograms_) h.reset();
}

namespace {

void put_name(Bytes& out, const std::string& name) {
  append_u32le(out, static_cast<std::uint32_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
}

std::string take_name(BytesView in, std::size_t& off) {
  const std::uint32_t len = read_u32le(in, off);
  off += 4;
  if (off + len > in.size()) {
    throw std::runtime_error("MetricsRegistry: truncated binary image");
  }
  std::string name(reinterpret_cast<const char*>(in.data() + off), len);
  off += len;
  return name;
}

std::uint64_t take_u64(BytesView in, std::size_t& off) {
  const std::uint64_t v = read_u64le(in, off);
  off += 8;
  return v;
}

}  // namespace

void MetricsRegistry::encode_binary(Bytes& out) const {
  append_u32le(out, static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [n, c] : counters_) {
    put_name(out, n);
    append_u64le(out, c.value());
  }
  append_u32le(out, static_cast<std::uint32_t>(gauges_.size()));
  for (const auto& [n, g] : gauges_) {
    put_name(out, n);
    out.push_back(g.is_set() ? 1 : 0);
    append_u64le(out, static_cast<std::uint64_t>(g.value()));
  }
  append_u32le(out, static_cast<std::uint32_t>(histograms_.size()));
  for (const auto& [n, h] : histograms_) {
    put_name(out, n);
    append_u64le(out, h.count());
    append_u64le(out, h.sum());
    append_u64le(out, h.min());
    append_u64le(out, h.max());
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      append_u64le(out, h.buckets()[i]);
    }
  }
}

void MetricsRegistry::merge_binary(BytesView in) {
  try {
    std::size_t off = 0;
    const std::uint32_t n_counters = read_u32le(in, off);
    off += 4;
    for (std::uint32_t i = 0; i < n_counters; ++i) {
      const std::string name = take_name(in, off);
      counter(name).inc(take_u64(in, off));
    }
    const std::uint32_t n_gauges = read_u32le(in, off);
    off += 4;
    for (std::uint32_t i = 0; i < n_gauges; ++i) {
      const std::string name = take_name(in, off);
      if (off >= in.size()) {
        throw std::runtime_error("MetricsRegistry: truncated binary image");
      }
      const bool set = in[off++] != 0;
      const std::int64_t v = static_cast<std::int64_t>(take_u64(in, off));
      if (set) gauge(name).max_in(v);
    }
    const std::uint32_t n_hists = read_u32le(in, off);
    off += 4;
    for (std::uint32_t i = 0; i < n_hists; ++i) {
      const std::string name = take_name(in, off);
      const std::uint64_t count = take_u64(in, off);
      const std::uint64_t sum = take_u64(in, off);
      const std::uint64_t min = take_u64(in, off);
      const std::uint64_t max = take_u64(in, off);
      std::array<std::uint64_t, Histogram::kBuckets> buckets;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        buckets[b] = take_u64(in, off);
      }
      histogram(name).merge_raw(buckets, count, sum, min, max);
    }
  } catch (const std::out_of_range&) {
    throw std::runtime_error("MetricsRegistry: truncated binary image");
  }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [n, c] : counters_) w.field(n, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [n, g] : gauges_) w.field(n, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [n, h] : histograms_) {
    w.key(n).begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.key("buckets").begin_object();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets()[i] != 0) {
        w.field(std::to_string(i), h.buckets()[i]);
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace cra::obs
