#include "tca/security.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace cra::tca {

const char* strategy_name(AdvStrategy strategy) noexcept {
  switch (strategy) {
    case AdvStrategy::kGuessResult: return "guess-RES_S";
    case AdvStrategy::kGuessToken: return "guess-res_i";
    case AdvStrategy::kZeroToken: return "zero-token";
    case AdvStrategy::kReplayToken: return "replay-token";
    case AdvStrategy::kReplayChal: return "replay-chal";
    case AdvStrategy::kSuppressSubtree: return "suppress-subtree";
    case AdvStrategy::kHonestButLate: return "honest-but-late";
  }
  return "?";
}

std::vector<AdvStrategy> all_strategies() {
  return {AdvStrategy::kGuessResult,  AdvStrategy::kGuessToken,
          AdvStrategy::kZeroToken,    AdvStrategy::kReplayToken,
          AdvStrategy::kReplayChal,   AdvStrategy::kSuppressSubtree,
          AdvStrategy::kHonestButLate};
}

namespace {

struct TrialOutcome {
  bool verified = false;
  bool compromised_at_chal = false;
};

TrialOutcome play_trial(const sap::SapConfig& config, std::uint32_t devices,
                        AdvStrategy strategy, std::uint64_t trial_seed) {
  Rng rng(trial_seed);
  const auto victim =
      static_cast<net::NodeId>(1 + rng.next_below(devices));
  sap::SapSimulation sim = sap::SapSimulation::balanced(
      config, devices, trial_seed);
  net::Network& net = sim.network();

  TrialOutcome out;

  switch (strategy) {
    case AdvStrategy::kGuessResult: {
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      // Replace every report reaching Vrf with fresh guesses; H_S
      // becomes Adv's direct guess at RES_S.
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.dst == 0) {
          return {net::TamperAction::kDeliverModified,
                  rng.next_bytes(m.payload.size())};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kGuessToken: {
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      // Substitute the infected device's (wrong) token with a guess at
      // the correct res_i.
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.src == victim) {
          return {net::TamperAction::kDeliverModified,
                  rng.next_bytes(m.payload.size())};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kZeroToken: {
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.src == victim) {
          return {net::TamperAction::kDeliverModified,
                  Bytes(m.payload.size(), 0)};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kReplayToken: {
      // Round 1 (healthy): record the victim's outgoing report.
      Bytes recorded;
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.src == victim) {
          recorded = m.payload;
        }
        return {};
      });
      if (!sim.run_round().verified) break;  // setup must be healthy
      sim.advance_time(sim::Duration::from_ms(50));

      // Round 2: infect, then replay the stale report. The fresh chal is
      // bound into every res_i, so the stale aggregate cannot match.
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.src == victim &&
            !recorded.empty() && recorded.size() == m.payload.size()) {
          return {net::TamperAction::kDeliverModified, recorded};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kReplayChal: {
      // Round 1 (healthy): record the chal the victim received.
      Bytes recorded_chal;
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kChalMsg && m.dst == victim &&
            recorded_chal.empty()) {
          recorded_chal = m.payload;
        }
        return {};
      });
      if (!sim.run_round().verified) break;
      sim.advance_time(sim::Duration::from_ms(50));

      // Round 2: infect the victim and feed it the stale chal. The
      // secure clock has moved on, so attest's chal-vs-clock check
      // zeroes the token — attack (c) is dead without clock tampering.
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kChalMsg && m.dst == victim &&
            !recorded_chal.empty()) {
          return {net::TamperAction::kDeliverModified, recorded_chal};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kSuppressSubtree: {
      sim.compromise_device(victim);
      out.compromised_at_chal = true;
      // Erase the infected subtree from the report stream entirely.
      net.set_tamper_hook([&](const net::Message& m) -> net::TamperResult {
        if (m.kind == sap::kTokenMsg && m.src == victim) {
          return {net::TamperAction::kDrop, {}};
        }
        return {};
      });
      out.verified = sim.run_round().verified;
      break;
    }
    case AdvStrategy::kHonestButLate: {
      // Compromise strictly after t_att: PMEM(mi, t=chal) == cfg_i, so a
      // passing verification is NOT an Adv win under Definition 4.
      const sim::SimTime lower = sim.scheduler().now() +
                                 sap::request_lead_time(
                                     config, sim.tree().max_depth());
      const std::uint32_t tick = sim.clock().time_to_tick_ceil(lower);
      const sim::SimTime after_att =
          sim.clock().tick_to_time(tick) + sim::Duration::from_ms(1);
      sim.scheduler().schedule_at(after_att,
                                  [&] { sim.compromise_device(victim); });
      out.compromised_at_chal = false;
      out.verified = sim.run_round().verified;
      break;
    }
  }
  return out;
}

}  // namespace

GameResult run_security_game(const sap::SapConfig& config,
                             std::uint32_t devices, AdvStrategy strategy,
                             std::uint32_t trials, std::uint64_t seed) {
  if (devices == 0 || trials == 0) {
    throw std::invalid_argument("run_security_game: empty game");
  }
  GameResult result;
  result.strategy = strategy;
  Rng seeder(seed ^ 0x7c4a5ecu);
  for (std::uint32_t t = 0; t < trials; ++t) {
    const TrialOutcome out =
        play_trial(config, devices, strategy, seeder.next());
    ++result.trials;
    if (out.verified && out.compromised_at_chal) ++result.adv_wins;
    if (!out.verified) ++result.detected;
  }
  return result;
}

}  // namespace cra::tca
