// TCA-Security game (paper Definition 4 and the §VI-C case analysis).
//
// Adv wins the game iff verify outputs 1 while at least one device's
// PMEM differs from cfg_i at t = chal. The game harness instantiates a
// swarm, compromises one (or more) devices — establishing the winning
// precondition — and lets a strategy exercise the network-level powers
// the model grants Adv (full control of communication: inject, drop,
// modify, replay). Adv wins a trial when the round still verifies.
//
// Strategies map to the proof's case analysis:
//   kGuessResult      — guess RES_S directly (case 1)
//   kGuessToken       — guess the infected device's res_i (case 2b)
//   kZeroToken        — special guess: all-zero token
//   kReplayToken      — replay res_i from an earlier (healthy) round
//   kReplayChal       — feed the subtree an old challenge (attack (c)
//                       without clock tampering: attest rejects it)
//   kSuppressSubtree  — drop the infected subtree's report and forge the
//                       parent aggregate
//   kHonestButLate    — compromise the device *after* t_att but within
//                       the same round (TOCTOU boundary: Adv legally
//                       escapes detection this round — not a win by
//                       Definition 4, which quantifies state at t=chal;
//                       included to pin the definition's edge)
//
// Device-local attacks on the attest TCB itself — key extraction, code
// patching, clock tampering, interrupt injection (attacks (a)-(c) in
// §VI-C) — are exercised against the real machine model in
// tests/device/test_security_rules.cpp, including the rule-ablation
// variants where disabling an MPU rule lets the corresponding attack
// succeed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sap/config.hpp"

namespace cra::tca {

enum class AdvStrategy : std::uint8_t {
  kGuessResult,
  kGuessToken,
  kZeroToken,
  kReplayToken,
  kReplayChal,
  kSuppressSubtree,
  kHonestButLate,
};

const char* strategy_name(AdvStrategy strategy) noexcept;

/// All strategies, for parameterized sweeps.
std::vector<AdvStrategy> all_strategies();

struct GameResult {
  AdvStrategy strategy{};
  std::uint64_t trials = 0;
  std::uint64_t adv_wins = 0;
  /// Rounds in which verification (correctly) rejected the swarm.
  std::uint64_t detected = 0;
  bool secure() const noexcept { return trials > 0 && adv_wins == 0; }
};

/// Play `trials` independent games of `strategy` on swarms of `devices`
/// devices (fresh keys/seeds per trial).
GameResult run_security_game(const sap::SapConfig& config,
                             std::uint32_t devices, AdvStrategy strategy,
                             std::uint32_t trials, std::uint64_t seed = 1);

}  // namespace cra::tca
