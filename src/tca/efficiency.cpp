#include "tca/efficiency.hpp"

#include <stdexcept>

#include "sap/swarm.hpp"

namespace cra::tca {

EfficiencyReport run_efficiency_sweep(const sap::SapConfig& config,
                                      const std::vector<std::uint32_t>& sizes,
                                      std::uint64_t seed) {
  if (sizes.size() < 3) {
    throw std::invalid_argument(
        "run_efficiency_sweep: need >= 3 sizes for asymptotic fits");
  }
  EfficiencyReport report;
  std::vector<double> ns, delays, utils;
  for (std::uint32_t n : sizes) {
    auto sim = sap::SapSimulation::balanced(config, n, seed);
    const sap::RoundReport round = sim.run_round();
    EfficiencyPoint p;
    p.devices = n;
    p.tree_depth = sim.tree().max_depth();
    p.max_degree = sim.tree().max_degree();
    p.total_sec = round.total().sec();
    p.t_ca_sec = round.t_ca().sec();
    p.u_ca_bytes = round.u_ca_bytes;
    p.verified = round.verified;
    report.points.push_back(p);
    ns.push_back(static_cast<double>(n));
    // Fit T_CA (Equation 6: t_resp - t_att), which Lemma 3 bounds and
    // which is free of the secure clock's tick-quantization noise (the
    // whole-round time adds up-to-one-tick jitter from chal rounding).
    delays.push_back(p.t_ca_sec);
    utils.push_back(static_cast<double>(p.u_ca_bytes));
    report.degree_bound = std::max(report.degree_bound, p.max_degree);
  }

  report.utilization_fit = fit_linear(ns, utils);
  report.delay_fit = fit_log2(ns, delays);
  report.utilization_preference = linear_vs_log_preference(ns, utils);
  report.delay_preference = linear_vs_log_preference(ns, delays);

  // Definition 2 criteria.
  report.degree_constant = report.degree_bound <= config.tree_arity + 1;
  report.utilization_linear =
      report.utilization_fit.r_squared > 0.9999 &&
      report.utilization_preference > 0.0;
  report.delay_logarithmic =
      report.delay_fit.r_squared > 0.99 && report.delay_preference < 0.0;
  return report;
}

}  // namespace cra::tca
