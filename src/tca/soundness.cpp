#include "tca/soundness.hpp"

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sap/swarm.hpp"

namespace cra::tca {
namespace {

net::Tree make_tree(TopologyKind kind, std::uint32_t devices,
                    std::uint32_t arity, Rng& rng) {
  switch (kind) {
    case TopologyKind::kBalanced:
      return net::balanced_kary_tree(devices, arity);
    case TopologyKind::kLine:
      return net::line_tree(devices);
    case TopologyKind::kRandom:
      return net::random_tree(devices, arity + 1, rng);
  }
  return net::balanced_kary_tree(devices, arity);
}

}  // namespace

SoundnessReport run_soundness_experiment(
    const sap::SapConfig& config, const std::vector<std::uint32_t>& sizes,
    const std::vector<TopologyKind>& shapes, std::uint32_t trials,
    std::uint64_t seed) {
  SoundnessReport report;
  Rng rng(seed);
  for (std::uint32_t n : sizes) {
    for (TopologyKind shape : shapes) {
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        const std::uint64_t run_seed = rng.next();
        Rng topo_rng(run_seed);
        sap::SapSimulation sim(config,
                               make_tree(shape, n, config.tree_arity,
                                         topo_rng),
                               run_seed);
        ++report.runs;
        if (!sim.run_round().verified) ++report.failures;
      }
    }
  }
  return report;
}

}  // namespace cra::tca
