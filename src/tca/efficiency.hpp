// TCA-Efficiency harness (paper Definition 2, Lemmas 1-3).
//
// Definition 2 requires, for every m_i in S:
//   degree(m_i) = O(1),  U_CA = O(N · l),  T_CA = O(log N · c1 + c2).
//
// Asymptotic claims cannot be checked at a single point, so the harness
// sweeps swarm sizes, measures (degree, U_CA, T_CA) in full simulated
// rounds, and fits the sweeps against linear-in-N and linear-in-log2(N)
// models. SAP passes when: degree is bounded by a constant independent
// of N, the utilization fit is (near-perfectly) linear, and the delay
// fit is (near-perfectly) logarithmic with the linear model clearly
// worse. This turns the paper's lemmas into executable assertions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sap/config.hpp"

namespace cra::tca {

struct EfficiencyPoint {
  std::uint32_t devices = 0;
  std::uint32_t tree_depth = 0;
  std::uint32_t max_degree = 0;
  double total_sec = 0;  // whole round (Figure 3a)
  double t_ca_sec = 0;   // Equation 6
  std::uint64_t u_ca_bytes = 0;
  bool verified = false;
};

struct EfficiencyReport {
  std::vector<EfficiencyPoint> points;

  LinearFit utilization_fit;  // U_CA vs N           (expect linear)
  LinearFit delay_fit;        // total vs log2(N)    (expect linear)
  double utilization_preference = 0;  // >0: linear explains U_CA better
  double delay_preference = 0;        // <0: log explains T better

  std::uint32_t degree_bound = 0;  // max over the whole sweep

  bool degree_constant = false;
  bool utilization_linear = false;
  bool delay_logarithmic = false;
  bool tca_efficient() const noexcept {
    return degree_constant && utilization_linear && delay_logarithmic;
  }
};

/// Run one SAP round per size and evaluate the Definition 2 criteria.
EfficiencyReport run_efficiency_sweep(const sap::SapConfig& config,
                                      const std::vector<std::uint32_t>& sizes,
                                      std::uint64_t seed = 1);

}  // namespace cra::tca
