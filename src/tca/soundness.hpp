// TCA-Soundness experiment (paper Definition 3).
//
// Definition 3: Pr[ verify(H_S, VS) = 0 | ¬Adv ] < negl(l) — an honest
// run over healthy devices must verify, except with negligible
// probability. The experiment runs many independent rounds (varying
// seeds, sizes, and topology shapes) with no adversary and counts
// verification failures; any failure is a soundness bug, not noise.
#pragma once

#include <cstdint>
#include <vector>

#include "sap/config.hpp"

namespace cra::tca {

enum class TopologyKind : std::uint8_t { kBalanced, kLine, kRandom };

struct SoundnessReport {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  bool sound() const noexcept { return runs > 0 && failures == 0; }
};

/// `trials` honest rounds per (size, topology) combination.
SoundnessReport run_soundness_experiment(
    const sap::SapConfig& config, const std::vector<std::uint32_t>& sizes,
    const std::vector<TopologyKind>& shapes, std::uint32_t trials,
    std::uint64_t seed = 1);

}  // namespace cra::tca
