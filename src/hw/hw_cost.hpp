// Hardware cost model of SAP's TrustLite extensions (paper §VII-B,
// Table II).
//
// SAP needs two hardware additions over baseline TrustLite: the secure
// read-only clock (32-bit counter + cycle divider) and one extra EA-MPU
// rule restricting access to K_{mi,Vrf}. The paper reports the FPGA
// synthesis impact: +2.45 % registers and +1.41 % look-up tables over
// baseline TrustLite (6,038 registers / 6,335 LUTs).
//
// We itemize the extension so the ablation bench can attribute cost:
//   secure clock: 32-bit counter (32 FF) + 18-bit divider counter (18)
//     + compare/carry and bus read port ≈ 120 registers, 70 LUTs
//   EA-MPU rule: two 24-bit boundary registers + match logic
//     ≈ 28 registers, 19 LUTs
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cra::hw {

struct ResourceCount {
  std::uint32_t registers = 0;
  std::uint32_t luts = 0;

  ResourceCount operator+(const ResourceCount& other) const noexcept {
    return {registers + other.registers, luts + other.luts};
  }
};

struct CostItem {
  std::string name;
  ResourceCount cost;
};

/// Baseline TrustLite synthesis footprint (Intel Siskiyou Peak).
ResourceCount trustlite_baseline();

/// SAP's itemized hardware additions.
std::vector<CostItem> sap_extension_items();

/// Baseline + all extension items.
ResourceCount sap_total();

/// Relative overhead of the extensions over baseline (fractions, e.g.
/// 0.0245 for +2.45 %).
double register_overhead();
double lut_overhead();

}  // namespace cra::hw
