#include "hw/hw_cost.hpp"

namespace cra::hw {

ResourceCount trustlite_baseline() { return {6038, 6335}; }

std::vector<CostItem> sap_extension_items() {
  return {
      {"secure read-only clock (counter + divider + bus port)", {120, 70}},
      {"EA-MPU rule for K region (bounds + match logic)", {28, 19}},
  };
}

ResourceCount sap_total() {
  ResourceCount total = trustlite_baseline();
  for (const auto& item : sap_extension_items()) {
    total = total + item.cost;
  }
  return total;
}

double register_overhead() {
  const ResourceCount base = trustlite_baseline();
  return static_cast<double>(sap_total().registers - base.registers) /
         static_cast<double>(base.registers);
}

double lut_overhead() {
  const ResourceCount base = trustlite_baseline();
  return static_cast<double>(sap_total().luts - base.luts) /
         static_cast<double>(base.luts);
}

}  // namespace cra::hw
