// Hardware cost model vs Table II of the paper.
#include "hw/hw_cost.hpp"

#include <gtest/gtest.h>

namespace cra::hw {
namespace {

TEST(HwCost, BaselineTrustLite) {
  const ResourceCount base = trustlite_baseline();
  EXPECT_EQ(base.registers, 6038u);
  EXPECT_EQ(base.luts, 6335u);
}

TEST(HwCost, OverheadMatchesTable2) {
  // "SAP incurs an overhead of 2.45% and 1.41% over baseline TrustLite."
  EXPECT_NEAR(register_overhead(), 0.0245, 0.0005);
  EXPECT_NEAR(lut_overhead(), 0.0141, 0.0005);
}

TEST(HwCost, ItemizedExtensions) {
  const auto items = sap_extension_items();
  ASSERT_EQ(items.size(), 2u);  // secure clock + one EA-MPU rule
  ResourceCount sum;
  for (const auto& item : items) {
    EXPECT_GT(item.cost.registers, 0u);
    EXPECT_GT(item.cost.luts, 0u);
    sum = sum + item.cost;
  }
  const ResourceCount base = trustlite_baseline();
  EXPECT_EQ(sap_total().registers, base.registers + sum.registers);
  EXPECT_EQ(sap_total().luts, base.luts + sum.luts);
}

TEST(HwCost, ClockDominatesTheExtensionCost) {
  const auto items = sap_extension_items();
  EXPECT_GT(items[0].cost.registers, items[1].cost.registers);
  EXPECT_GT(items[0].cost.luts, items[1].cost.luts);
}

TEST(HwCost, ResourceCountAddition) {
  const ResourceCount a{10, 20};
  const ResourceCount b{1, 2};
  const ResourceCount c = a + b;
  EXPECT_EQ(c.registers, 11u);
  EXPECT_EQ(c.luts, 22u);
}

}  // namespace
}  // namespace cra::hw
