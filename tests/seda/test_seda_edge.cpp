// SEDA edge behaviour: partial aggregates, forged traffic, wire-format
// accounting.
#include <gtest/gtest.h>

#include "seda/seda.hpp"

namespace cra::seda {
namespace {

SedaConfig fast() {
  SedaConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.sig_verify_cycles = 1'000'000;
  return cfg;
}

TEST(SedaEdge, UnresponsiveInnerNodeCostsItsSubtree) {
  auto sim = SedaSimulation::balanced(fast(), 30);
  sim.set_device_unresponsive(2, true);  // heads a 15-node subtree
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.total, 15u);  // only node 1's subtree reported
}

TEST(SedaEdge, AllDevicesCompromisedCountsToZeroPassed) {
  auto sim = SedaSimulation::balanced(fast(), 14);
  for (net::NodeId id = 1; id <= 14; ++id) sim.compromise_device(id);
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.total, 14u);
  EXPECT_EQ(r.passed, 0u);
}

TEST(SedaEdge, ForgedCountInflationRejected) {
  // Adv rewrites a report to claim a huge passing count: the pairwise
  // MAC fails and the parent discards it — counts cannot be inflated
  // without a key.
  auto sim = SedaSimulation::balanced(fast(), 14);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == 2 && m.src == 7) {  // leaf 7's report
          Bytes evil = m.payload;
          evil[0] = 200;  // total := huge
          evil[4] = 200;  // passed := huge
          return {net::TamperAction::kDeliverModified, std::move(evil)};
        }
        return {};
      });
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_GE(r.mac_failures, 1u);
  EXPECT_LT(r.total, 200u);
}

TEST(SedaEdge, DroppedReportShrinksTotals) {
  auto sim = SedaSimulation::balanced(fast(), 14);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == 2 && m.src == 9) {
          return {net::TamperAction::kDrop, {}};
        }
        return {};
      });
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.total, 13u);
}

TEST(SedaEdge, WireFormatDrivesUtilization) {
  SedaConfig big = fast();
  big.sig_size = 96;  // larger request signature
  auto small_sim = SedaSimulation::balanced(fast(), 100);
  auto big_sim = SedaSimulation::balanced(big, 100);
  const auto rs = small_sim.run_round();
  const auto rb = big_sim.run_round();
  EXPECT_EQ(rb.u_ca_bytes - rs.u_ca_bytes, (96u - 44u) * 100u);
}

TEST(SedaEdge, SigVerifyCostMovesRuntimeByItsExactAmount) {
  SedaConfig slow = fast();
  slow.sig_verify_cycles = 10'000'000;
  auto fast_sim = SedaSimulation::balanced(fast(), 30);
  auto slow_sim = SedaSimulation::balanced(slow, 30);
  const double delta = slow_sim.run_round().total_time().sec() -
                       fast_sim.run_round().total_time().sec();
  // 9M extra cycles at 24 MHz = 375 ms, paid once on the critical path
  // (devices verify in a pipeline, not in series).
  EXPECT_NEAR(delta, 0.375, 0.01);
}

TEST(SedaEdge, LineTopologyWorks) {
  auto sim = SedaSimulation(fast(), net::line_tree(20));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(SedaEdge, SingleDevice) {
  auto sim = SedaSimulation::balanced(fast(), 1);
  const auto r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.total, 1u);
}

}  // namespace
}  // namespace cra::seda
