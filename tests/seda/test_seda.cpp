// The SEDA baseline, and the SAP-vs-SEDA comparison shape the paper's
// Figure 3 reports.
#include "seda/seda.hpp"

#include <gtest/gtest.h>

#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace cra::seda {
namespace {

SedaConfig small_config() {
  SedaConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.sig_verify_cycles = 1'000'000;  // scaled down with the PMEM
  return cfg;
}

TEST(Seda, HonestRoundVerifies) {
  auto sim = SedaSimulation::balanced(small_config(), 30);
  const SedaRoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.total, 30u);
  EXPECT_EQ(r.passed, 30u);
  EXPECT_EQ(r.mac_failures, 0u);
}

TEST(Seda, CompromisedDeviceLowersPassedCount) {
  auto sim = SedaSimulation::balanced(small_config(), 30);
  sim.compromise_device(11);
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.total, 30u);
  EXPECT_EQ(r.passed, 29u);
}

TEST(Seda, UnresponsiveDeviceLowersTotal) {
  auto sim = SedaSimulation::balanced(small_config(), 30);
  sim.set_device_unresponsive(30, true);
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.total, 29u);
}

TEST(Seda, TamperedReportRejectedByParent) {
  auto sim = SedaSimulation::balanced(small_config(), 14);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == 2 /*report*/ && m.src == 3) {
          Bytes evil = m.payload;
          evil[0] = static_cast<std::uint8_t>(evil[0] ^ 0xff);  // counts
          return {net::TamperAction::kDeliverModified, std::move(evil)};
        }
        return {};
      });
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_GE(r.mac_failures, 1u);  // hop-by-hop MAC check caught it
}

TEST(Seda, UtilizationMatchesPrediction) {
  auto sim = SedaSimulation::balanced(small_config(), 100);
  const SedaRoundReport r = sim.run_round();
  EXPECT_EQ(r.u_ca_bytes, sim.predicted_u_ca_bytes(100));
}

TEST(Seda, RuntimeClosesOnPrediction) {
  auto sim = SedaSimulation::balanced(small_config(), 100);
  const SedaRoundReport r = sim.run_round();
  const double predicted = sim.predicted_total(sim.tree().max_depth()).sec();
  EXPECT_NEAR(r.total_time().sec(), predicted, 0.05 * predicted + 0.005);
}

TEST(Seda, ConsecutiveRoundsIndependent) {
  auto sim = SedaSimulation::balanced(small_config(), 20);
  EXPECT_TRUE(sim.run_round().verified);
  sim.advance_time(sim::Duration::from_ms(10));
  sim.compromise_device(5);
  EXPECT_FALSE(sim.run_round().verified);
  sim.restore_device(5);
  sim.advance_time(sim::Duration::from_ms(10));
  EXPECT_TRUE(sim.run_round().verified);
}

// --- The Figure 3 comparison shape ---

struct ComparisonPoint {
  double sap_sec = 0;
  double seda_sec = 0;
  std::uint64_t sap_bytes = 0;
  std::uint64_t seda_bytes = 0;
};

ComparisonPoint compare_at(std::uint32_t n) {
  sap::SapConfig sap_cfg;  // paper-scale parameters (50 KB PMEM, 24 MHz)
  auto sap_sim = sap::SapSimulation::balanced(sap_cfg, n);
  const auto sap_round = sap_sim.run_round();

  SedaConfig seda_cfg;  // paper-scale
  auto seda_sim = SedaSimulation::balanced(seda_cfg, n);
  const auto seda_round = seda_sim.run_round();

  EXPECT_TRUE(sap_round.verified);
  EXPECT_TRUE(seda_round.verified);
  return {sap_round.total().sec(), seda_round.total_time().sec(),
          sap_round.u_ca_bytes, seda_round.u_ca_bytes};
}

TEST(SapVsSeda, SapFasterAtEverySize) {
  for (std::uint32_t n : {10u, 1000u, 100'000u}) {
    const ComparisonPoint p = compare_at(n);
    EXPECT_LT(p.sap_sec, p.seda_sec) << "N=" << n;
  }
}

TEST(SapVsSeda, PaperScaleRatioAtHundredThousand) {
  // Figure 3(a) at N = 10^6 shows ~0.6 s vs ~1.4 s (~2.3x). The ratio is
  // nearly size-independent (both curves are log + constant); check it
  // at 10^5 to keep the test fast.
  const ComparisonPoint p = compare_at(100'000);
  const double ratio = p.seda_sec / p.sap_sec;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 3.0);
}

TEST(SapVsSeda, SapUsesHalfTheBandwidth) {
  // "Communication overhead of SAP is half that of SEDA."
  for (std::uint32_t n : {100u, 10'000u}) {
    const ComparisonPoint p = compare_at(n);
    const double ratio = static_cast<double>(p.seda_bytes) /
                         static_cast<double>(p.sap_bytes);
    EXPECT_NEAR(ratio, 2.0, 0.25) << "N=" << n;
  }
}

}  // namespace
}  // namespace cra::seda
