// SEDA's join phase: X25519 pairwise-key agreement per tree edge.
#include <gtest/gtest.h>

#include "seda/seda.hpp"

namespace cra::seda {
namespace {

SedaConfig fast() {
  SedaConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.sig_verify_cycles = 1'000'000;
  cfg.dh_cycles = 2'000'000;  // scaled with the rest of the fast profile
  return cfg;
}

TEST(SedaJoin, CompletesAndRoundsStillVerify) {
  auto sim = SedaSimulation::balanced(fast(), 30);
  const SedaJoinReport join = sim.run_join();
  EXPECT_TRUE(join.complete);
  EXPECT_EQ(join.edges, 30u);
  EXPECT_GT(join.messages, 0u);
  // DH-agreed keys replaced the provisioned ones on BOTH ends — the
  // round only verifies if every edge derived matching halves.
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(SedaJoin, JoinCostScalesWithDhAndDepth) {
  SedaConfig cfg = fast();
  auto sim = SedaSimulation::balanced(cfg, 62);
  const SedaJoinReport join = sim.run_join();
  // Critical path: invites cascade (children get theirs before the
  // parent's DH grinds), then each level pays one DH before acking.
  const double dh_sec = static_cast<double>(cfg.dh_cycles) / 24e6;
  EXPECT_GT(join.total_time.sec(), dh_sec);          // at least one DH
  EXPECT_LT(join.total_time.sec(), 12 * dh_sec);     // pipelined, not serial
}

TEST(SedaJoin, WireCostIsTwoKeysPerEdge) {
  auto sim = SedaSimulation::balanced(fast(), 30);
  const SedaJoinReport join = sim.run_join();
  EXPECT_EQ(join.bytes, 2ull * 32ull * 30ull);  // invite + ack per edge
  EXPECT_EQ(join.messages, 60u);
}

TEST(SedaJoin, CorruptedKeyHalfBreaksThatUplink) {
  auto sim = SedaSimulation::balanced(fast(), 14);
  ASSERT_TRUE(sim.run_join().complete);
  sim.corrupt_join_key(3);  // MitM'd agreement on 3's uplink
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_GE(r.mac_failures, 1u);
  // 3 heads a 3-device subtree ({3,7,8}) of the 14-device tree; its
  // whole aggregate is rejected at node 1.
  EXPECT_EQ(r.total, 11u);
}

TEST(SedaJoin, UnresponsiveDeviceBlocksItsSubtreeJoin) {
  auto sim = SedaSimulation::balanced(fast(), 14);
  sim.set_device_unresponsive(2, true);
  const SedaJoinReport join = sim.run_join();
  EXPECT_FALSE(join.complete);  // 2's subtree never key-agreed
  // Un-joined edges keep their provisioning-time pre-shared keys on
  // BOTH ends, so once the device wakes up the swarm still attests —
  // join upgrades keys, it is not a liveness gate.
  sim.set_device_unresponsive(2, false);
  const SedaRoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
}

TEST(SedaJoin, CompromiseDetectionUnaffectedByJoin) {
  auto sim = SedaSimulation::balanced(fast(), 20);
  ASSERT_TRUE(sim.run_join().complete);
  sim.compromise_device(11);
  const SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.passed, 19u);
}

}  // namespace
}  // namespace cra::seda
