// The PR's acceptance gate: PADS 10k-device round digests are
// byte-identical across the serial Scheduler and the sharded
// ParallelScheduler at threads in {1, 2, 8}, including under membership
// churn and mid-round mobility rewires.
//
// The digest hashes every node's final knowledge vectors, both
// membership views, the consensus instant and the traffic ledgers — a
// reordered merge, a dropped message or a misrouted rewire on any
// engine configuration lands in the hash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "net/mobility.hpp"
#include "pads/pads.hpp"

namespace cra::pads {
namespace {

constexpr std::uint32_t kDevices = 10'000;
constexpr std::uint64_t kSeed = 42;

PadsConfig big_config(std::uint32_t threads, std::uint32_t shards) {
  PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.gossip_epochs = 12;  // bounded budget keeps the suite fast; the
                           // digest contract holds converged or not
  cfg.sim.threads = threads;
  cfg.sim.shards = shards;
  return cfg;
}

std::string run_digest(std::uint32_t threads, std::uint32_t shards,
                       bool with_dynamics) {
  auto sim = PadsSimulation::balanced(big_config(threads, shards), kDevices,
                                      kSeed);
  if (with_dynamics) {
    const sim::SimTime t0 = sim.current_time();
    fault::FaultPlan::ChurnProfile profile;
    profile.leave_rate = 0.02;
    profile.join_rate = 0.01;
    profile.crash_rate = 0.01;
    sim.attach_fault_plan(fault::FaultPlan::churn(
        kSeed, sim.tree(), t0, t0 + sim::Duration::from_sec(3.0), profile));
    net::MobilityConfig mcfg;
    mcfg.step = sim::Duration::from_ms(700);
    sim.set_rewire_schedule(net::mobility_schedule(
        kDevices, mcfg, kSeed, t0 + sim::Duration::from_ms(600),
        t0 + sim::Duration::from_sec(2.5)));
  }
  return sim.run_round().digest;
}

TEST(PadsDeterminism, TenKDigestIdenticalAcrossEnginesAndThreads) {
  // Serial reference: the classic single-queue Scheduler.
  const std::string serial = run_digest(/*threads=*/1, /*shards=*/1, false);
  ASSERT_EQ(serial.size(), 64u);
  // Sharded engine at a fixed shard count, every thread count: the
  // horizon sequence (and so the digest) may depend on the shard
  // layout, never on worker parallelism — and for a loss-free round it
  // must match the serial engine bit-for-bit too.
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    const std::string d = run_digest(threads, /*shards=*/8, false);
    EXPECT_EQ(d, serial) << "threads=" << threads;
  }
}

TEST(PadsDeterminism, TenKDigestStableUnderChurnAndMobility) {
  // With dynamics the serial and sharded engines see different loss
  // sub-streams only when loss is armed (it is not here), so the digest
  // must STILL agree across engines — and across thread counts.
  const std::string serial = run_digest(/*threads=*/1, /*shards=*/1, true);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    const std::string d = run_digest(threads, /*shards=*/8, true);
    EXPECT_EQ(d, serial) << "threads=" << threads;
  }
}

TEST(PadsDeterminism, RepeatRunReproducesExactly) {
  const std::string a = run_digest(2, 8, true);
  const std::string b = run_digest(2, 8, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cra::pads
