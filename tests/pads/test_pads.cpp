// PADS protocol rounds: clean convergence, compromise detection,
// membership churn, mid-round mobility, and engine invariance.
#include "pads/pads.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"

namespace cra::pads {
namespace {

PadsConfig small_config() {
  PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;  // keep simulated attestation short
  return cfg;
}

TEST(PadsRound, CleanRoundConvergesCompletely) {
  auto sim = PadsSimulation::balanced(small_config(), 30);
  const PadsRoundReport r = sim.run_round();
  EXPECT_EQ(r.devices, 30u);
  EXPECT_EQ(r.present, 30u);
  EXPECT_EQ(r.known, 30u);
  EXPECT_EQ(r.untrusted, 0u);
  EXPECT_EQ(r.false_untrusted, 0u);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.completion(), 1.0);
  EXPECT_EQ(r.token_failures, 0u);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.u_ca_bytes, 0u);
  // The verifier's verdict lands before the gossip budget runs out.
  EXPECT_GT(r.consensus_at, r.t_start);
  EXPECT_LT(r.consensus_at, r.t_end);
  EXPECT_EQ(r.digest.size(), 64u);  // SHA-256 hex
}

TEST(PadsRound, CompromisedLeafIsDetectedNotTrusted) {
  auto sim = PadsSimulation::balanced(small_config(), 30);
  // Leaves only: a compromised interior device would also partition the
  // gossip (nothing it relays is believed), which is the next test.
  sim.compromise_device(29);
  sim.compromise_device(30);
  const PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.known, 30u);
  EXPECT_EQ(r.untrusted, 2u);
  EXPECT_EQ(r.false_untrusted, 0u);
  // Every neighbor that heard the forged tokens rejected them.
  EXPECT_GT(r.token_failures, 0u);
}

TEST(PadsRound, CompromisedInteriorNodeBlocksItsSubtree) {
  // Line topology: 0 - 1 - 2 - ... - 10. Compromising device 5 cuts the
  // only gossip path, so devices 6..10 stay unknown at the verifier —
  // min-consensus refuses to launder knowledge through an untrusted
  // relay.
  auto sim = PadsSimulation(small_config(), net::line_tree(10));
  sim.compromise_device(5);
  const PadsRoundReport r = sim.run_round();
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.known, 5u);  // 1..4 plus the untrusted verdict on 5
  EXPECT_EQ(r.untrusted, 1u);
  EXPECT_EQ(r.false_untrusted, 0u);
}

TEST(PadsRound, CrashedDeviceLeavesHoleButNoFalseVerdict) {
  // A leaf (position 15 in the 20-device balanced binary tree), so only
  // its own evidence goes missing; a crashed interior relay would also
  // shadow its subtree, as CompromisedInteriorNodeBlocksItsSubtree pins
  // down for the equivalent routing cut.
  auto sim = PadsSimulation::balanced(small_config(), 20);
  fault::FaultPlan plan;
  plan.crash(sim::Duration::from_ms(1) + sim.current_time(), 15);
  sim.attach_fault_plan(std::move(plan));
  const PadsRoundReport r = sim.run_round();
  // Crashed before it could attest: present but never known.
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.present, 20u);
  EXPECT_EQ(r.known, 19u);
  EXPECT_EQ(r.untrusted, 0u);
  EXPECT_EQ(r.false_untrusted, 0u);
}

TEST(PadsRound, DepartedDeviceShrinksConsensusTarget) {
  auto sim = PadsSimulation::balanced(small_config(), 20);
  fault::FaultPlan plan;
  plan.leave(sim.current_time(), 13);
  sim.attach_fault_plan(std::move(plan));
  const PadsRoundReport r = sim.run_round();
  // The absent device is out of the swarm, not a completion hole.
  EXPECT_FALSE(sim.device_present(13));
  EXPECT_EQ(r.present, 19u);
  EXPECT_EQ(r.known, 19u);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.completion(), 1.0);
}

TEST(PadsRound, LateJoinerIsPresentButUnknownThisRound) {
  auto sim = PadsSimulation::balanced(small_config(), 20);
  fault::FaultPlan plan;
  plan.leave(sim.current_time(), 17);  // a leaf: no subtree to shadow
  // Rejoins mid-round, long after the synchronized self-attestation
  // instant: it counts toward membership again but cannot produce
  // evidence until the next round.
  plan.join(sim.current_time() + sim::Duration::from_ms(400), 17);
  sim.attach_fault_plan(std::move(plan));
  const PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(sim.device_present(17));
  EXPECT_EQ(r.present, 20u);
  EXPECT_EQ(r.known, 19u);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.consensus_at, r.t_end);
}

TEST(PadsRound, MidRoundRewireStillConverges) {
  PadsConfig cfg = small_config();
  auto sim = PadsSimulation::balanced(cfg, 40);
  const sim::SimTime t0 = sim.current_time();
  // Swap the whole layout mid-round: device i moves to the mirrored
  // position. Gossip routed over the new tree must still converge.
  std::vector<net::NodeId> perm(41);
  perm[0] = 0;
  for (net::NodeId p = 1; p <= 40; ++p) perm[p] = 41 - p;
  std::vector<net::RewireStep> steps;
  steps.push_back(net::RewireStep{t0 + sim::Duration::from_ms(300),
                                  net::balanced_kary_tree(40), perm});
  sim.set_rewire_schedule(std::move(steps));
  const PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.known, 40u);
  EXPECT_EQ(r.false_untrusted, 0u);
}

TEST(PadsRound, WaypointMobilityScheduleConverges) {
  PadsConfig cfg = small_config();
  cfg.gossip_epochs = 40;  // slack: rewires can orphan in-flight hops
  auto sim = PadsSimulation::balanced(cfg, 24, /*seed=*/5);
  const sim::SimTime t0 = sim.current_time();
  net::MobilityConfig mcfg;
  mcfg.step = sim::Duration::from_ms(500);
  sim.set_rewire_schedule(net::mobility_schedule(
      24, mcfg, /*seed=*/5, t0, t0 + sim::Duration::from_sec(4.0)));
  const PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.false_untrusted, 0u);
}

TEST(PadsRound, PerLinkLedgersStayConsistent) {
  auto sim = PadsSimulation::balanced(small_config(), 15);
  sim.network().enable_per_link_accounting(true);
  // run_round() calls assert_ledgers_consistent() on every network.
  EXPECT_NO_THROW(sim.run_round());
}

TEST(PadsRound, SecondRoundRunsFreshState) {
  auto sim = PadsSimulation::balanced(small_config(), 12);
  const PadsRoundReport r1 = sim.run_round();
  sim.advance_time(sim::Duration::from_ms(50));
  sim.compromise_device(3);
  const PadsRoundReport r2 = sim.run_round();
  EXPECT_TRUE(r1.converged);
  EXPECT_EQ(r1.untrusted, 0u);
  EXPECT_EQ(r2.untrusted, 1u);
  EXPECT_NE(r1.digest, r2.digest);
}

TEST(PadsRound, GossipPeriodFlooredAtLinkTraversal) {
  PadsConfig cfg = small_config();
  cfg.gossip_period = sim::Duration::from_ns(1);  // absurdly fast
  auto sim = PadsSimulation::balanced(cfg, 100);
  EXPECT_GE(sim.effective_gossip_period(),
            sim.network().link_delay(sim.gossip_wire_size()));
  const PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(r.converged);
}

TEST(PadsRound, TokenSizeValidated) {
  PadsConfig cfg = small_config();
  cfg.token_size = 0;
  EXPECT_THROW(PadsSimulation::balanced(cfg, 4), std::invalid_argument);
  cfg.token_size = 64;  // > SHA-1 digest
  EXPECT_THROW(PadsSimulation::balanced(cfg, 4), std::invalid_argument);
}

TEST(PadsRound, RebuildTopologyValidatesShape) {
  auto sim = PadsSimulation::balanced(small_config(), 8);
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(9),
                                    std::vector<net::NodeId>(10)),
               std::invalid_argument);
  std::vector<net::NodeId> not_perm(9, 0);
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(8), not_perm),
               std::invalid_argument);
}

TEST(PadsRound, SmallCrossEngineDigestsMatch) {
  // The determinism contract in miniature (test_determinism.cpp runs the
  // 10k-device acceptance version): serial scheduler vs sharded engine,
  // same seed, byte-identical round digest.
  PadsConfig serial = small_config();
  auto a = PadsSimulation::balanced(serial, 50, /*seed=*/3);

  PadsConfig sharded = small_config();
  sharded.sim.threads = 4;
  sharded.sim.shards = 4;
  auto b = PadsSimulation::balanced(sharded, 50, /*seed=*/3);
  ASSERT_TRUE(b.parallel());

  const std::string da = a.run_round().digest;
  const std::string db = b.run_round().digest;
  EXPECT_EQ(da, db);
}

}  // namespace
}  // namespace cra::pads
