// PADS gossip wire format: round-trip identity, strict framing, and the
// zero-copy view agreeing with the owning decoder.
#include "pads/messages.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace cra::pads {
namespace {

GossipMsg sample(std::uint32_t devices) {
  GossipMsg m;
  m.sender = 7;
  m.epoch = 3;
  m.devices = devices;
  m.token = from_hex("00112233445566778899aabb");
  m.known.assign(knowledge_blocks(devices), 0);
  m.bad.assign(knowledge_blocks(devices), 0);
  for (std::size_t i = 0; i < m.known.size(); ++i) {
    m.known[i] = 0x0123456789abcdefULL * (i + 1);
    m.bad[i] = m.known[i] & 0x00ff00ff00ff00ffULL;
  }
  return m;
}

TEST(PadsMessages, RoundTripIdentity) {
  for (std::uint32_t devices : {1u, 63u, 64u, 65u, 200u, 1000u}) {
    const GossipMsg m = sample(devices);
    const Bytes wire = m.encode();
    ASSERT_EQ(wire.size(), m.wire_size());
    const auto back = GossipMsg::decode(wire);
    ASSERT_TRUE(back.has_value()) << "devices=" << devices;
    EXPECT_EQ(back->sender, m.sender);
    EXPECT_EQ(back->epoch, m.epoch);
    EXPECT_EQ(back->devices, m.devices);
    EXPECT_EQ(back->token, m.token);
    EXPECT_EQ(back->known, m.known);
    EXPECT_EQ(back->bad, m.bad);
  }
}

TEST(PadsMessages, ViewAgreesWithDecode) {
  const GossipMsg m = sample(130);
  const Bytes wire = m.encode();
  GossipView v;
  ASSERT_TRUE(GossipView::parse(wire, v));
  EXPECT_EQ(v.sender, m.sender);
  EXPECT_EQ(v.epoch, m.epoch);
  EXPECT_EQ(v.devices, m.devices);
  EXPECT_EQ(Bytes(v.token.begin(), v.token.end()), m.token);
  ASSERT_EQ(v.blocks(), m.known.size());
  for (std::size_t i = 0; i < v.blocks(); ++i) {
    EXPECT_EQ(v.known_block(i), m.known[i]);
    EXPECT_EQ(v.bad_block(i), m.bad[i]);
  }
}

TEST(PadsMessages, SparseVectorsEncodeAsZeroTail) {
  GossipMsg m = sample(200);
  m.known.resize(1);  // declared width needs 4 blocks; builder gives 1
  m.bad.clear();
  const Bytes wire = m.encode();
  EXPECT_EQ(wire.size(), m.wire_size());
  const auto back = GossipMsg::decode(wire);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->known.size(), knowledge_blocks(200));
  EXPECT_EQ(back->known[0], m.known[0]);
  for (std::size_t i = 1; i < back->known.size(); ++i) {
    EXPECT_EQ(back->known[i], 0u);
    EXPECT_EQ(back->bad[i], 0u);
  }
}

TEST(PadsMessages, RejectsEveryTruncation) {
  const Bytes wire = sample(100).encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(GossipMsg::decode(BytesView(wire.data(), len)).has_value())
        << "accepted truncation to " << len;
  }
}

TEST(PadsMessages, RejectsTrailingGarbage) {
  Bytes wire = sample(100).encode();
  wire.push_back(0x00);
  EXPECT_FALSE(GossipMsg::decode(wire).has_value());
}

TEST(PadsMessages, RejectsHostileWidth) {
  // A 0xffffffff declared width must fail the guard, not overflow the
  // frame arithmetic into a bogus accept.
  GossipMsg m = sample(1);
  Bytes wire = m.encode();
  store_u32le(wire.data() + 8, 0xffffffffu);
  EXPECT_FALSE(GossipMsg::decode(wire).has_value());
  GossipView v;
  EXPECT_FALSE(GossipView::parse(wire, v));
}

TEST(PadsMessages, RejectsTokenLengthMismatch) {
  Bytes wire = sample(64).encode();
  wire[12] = static_cast<std::uint8_t>(wire[12] + 1);  // declared token len
  EXPECT_FALSE(GossipMsg::decode(wire).has_value());
}

TEST(PadsMessages, EmptyInputRejected) {
  EXPECT_FALSE(GossipMsg::decode(BytesView()).has_value());
}

}  // namespace
}  // namespace cra::pads
