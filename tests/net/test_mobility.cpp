// Randomized property tests for the waypoint mobility model and the
// topology mutations it feeds into Network/PadsSimulation: every
// snapshot is a valid spanning tree over a permutation of the swarm,
// schedules replay bit-identically from their seed, and applying them
// to a live simulation keeps the network invariants (consistent byte
// ledgers, every live device reachable).
#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "pads/pads.hpp"

namespace cra::net {
namespace {

void expect_valid_step(const RewireStep& step, std::uint32_t devices) {
  // Tree's constructor already enforces the rooted-topological shape;
  // re-derive the headline invariants anyway.
  ASSERT_EQ(step.tree.size(), devices + 1);
  ASSERT_EQ(step.tree.device_count(), devices);
  ASSERT_EQ(step.device_at_position.size(), step.tree.size());
  EXPECT_EQ(step.device_at_position[0], 0u);
  // Permutation of 0..devices.
  std::vector<NodeId> sorted = step.device_at_position;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i <= devices; ++i) EXPECT_EQ(sorted[i], i);
  // Spanning: the parent chain from every position reaches the root, so
  // every live device is connected to the verifier.
  for (NodeId pos = 1; pos < step.tree.size(); ++pos) {
    EXPECT_LT(step.tree.parent(pos), pos);  // topological order
    EXPECT_LE(step.tree.depth(pos), step.tree.max_depth());
  }
}

TEST(Mobility, ScheduleIsPureFunctionOfSeed) {
  const MobilityConfig cfg;
  const auto a = mobility_schedule(50, cfg, 9, sim::SimTime::zero(),
                                   sim::SimTime::from_ms(2'000));
  const auto b = mobility_schedule(50, cfg, 9, sim::SimTime::zero(),
                                   sim::SimTime::from_ms(2'000));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].device_at_position, b[i].device_at_position);
    for (NodeId p = 0; p < a[i].tree.size(); ++p) {
      EXPECT_EQ(a[i].tree.parent(p), b[i].tree.parent(p));
    }
  }
  const auto c = mobility_schedule(50, cfg, 10, sim::SimTime::zero(),
                                   sim::SimTime::from_ms(2'000));
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a[i].device_at_position != c[i].device_at_position) differs = true;
  }
  EXPECT_TRUE(differs) << "different seed produced identical layouts";
}

TEST(Mobility, EverySnapshotIsAValidSpanningPermutation) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const auto devices = static_cast<std::uint32_t>(rng.next_range(2, 121));
    MobilityConfig cfg;
    cfg.speed = 0.01 + 0.2 * rng.next_double();
    cfg.max_children = static_cast<std::uint32_t>(rng.next_range(2, 7));
    const auto steps =
        mobility_schedule(devices, cfg, rng.next(), sim::SimTime::zero(),
                          sim::SimTime::from_ms(1'500));
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.front().at, sim::SimTime::zero());
    for (const auto& step : steps) expect_valid_step(step, devices);
    // Steps are strictly ordered in time.
    for (std::size_t i = 1; i < steps.size(); ++i) {
      EXPECT_LT(steps[i - 1].at, steps[i].at);
    }
  }
}

TEST(Mobility, NodesStayInsideUnitSquare) {
  MobilityConfig cfg;
  cfg.speed = 0.5;  // fast enough to hit several waypoints per step
  WaypointField field(40, cfg, 77);
  for (int i = 0; i < 200; ++i) {
    field.advance(sim::Duration::from_ms(100));
    for (NodeId n = 0; n < field.nodes(); ++n) {
      EXPECT_GE(field.x(n), 0.0);
      EXPECT_LE(field.x(n), 1.0);
      EXPECT_GE(field.y(n), 0.0);
      EXPECT_LE(field.y(n), 1.0);
    }
  }
  // The verifier is infrastructure: pinned at the field's center.
  EXPECT_DOUBLE_EQ(field.x(0), 0.5);
  EXPECT_DOUBLE_EQ(field.y(0), 0.5);
}

TEST(Mobility, DegreeBoundHolds) {
  MobilityConfig cfg;
  cfg.max_children = 3;
  WaypointField field(200, cfg, 31);
  for (int i = 0; i < 10; ++i) {
    field.advance(sim::Duration::from_ms(200));
    const RewireStep step = field.snapshot(sim::SimTime::zero());
    for (NodeId pos = 0; pos < step.tree.size(); ++pos) {
      EXPECT_LE(step.tree.children(pos).size(), cfg.max_children);
    }
  }
}

TEST(Mobility, ConfigValidation) {
  EXPECT_THROW(WaypointField(4, MobilityConfig{-0.1, sim::Duration::from_ms(1), 4}, 1),
               std::invalid_argument);
  EXPECT_THROW(WaypointField(4, MobilityConfig{0.1, sim::Duration::zero(), 4}, 1),
               std::invalid_argument);
  EXPECT_THROW(WaypointField(4, MobilityConfig{0.1, sim::Duration::from_ms(1), 0}, 1),
               std::invalid_argument);
}

// --- Applying mutations to a live simulation ---

TEST(Mobility, RewireSequenceKeepsNetworkInvariants) {
  pads::PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.gossip_epochs = 24;
  auto sim = pads::PadsSimulation::balanced(cfg, 30, /*seed=*/11);
  sim.network().enable_per_link_accounting(true);
  const sim::SimTime t0 = sim.current_time();
  MobilityConfig mcfg;
  mcfg.step = sim::Duration::from_ms(400);
  sim.set_rewire_schedule(mobility_schedule(
      30, mcfg, 11, t0, t0 + sim::Duration::from_sec(3.0)));
  // run_round() asserts ledger consistency on every per-shard network
  // after the rewired round; a dangling link (send to a node outside the
  // swarm) would throw out of the round.
  pads::PadsRoundReport r;
  ASSERT_NO_THROW(r = sim.run_round());
  // All live devices stayed reachable through every rewire: the
  // verifier covered the full swarm.
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.known, 30u);
}

TEST(Mobility, RewirePlusChurnKeepsInvariants) {
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    pads::PadsConfig cfg;
    cfg.pmem_size = 4 * 1024;
    auto sim = pads::PadsSimulation::balanced(cfg, 24, rng.next());
    sim.network().enable_per_link_accounting(true);
    const sim::SimTime t0 = sim.current_time();
    fault::FaultPlan::ChurnProfile profile;
    profile.leave_rate = 0.05;
    profile.join_rate = 0.05;
    profile.crash_rate = 0.02;
    sim.attach_fault_plan(fault::FaultPlan::churn(
        rng.next(), sim.tree(), t0, t0 + sim::Duration::from_sec(2.0),
        profile));
    MobilityConfig mcfg;
    mcfg.step = sim::Duration::from_ms(300);
    sim.set_rewire_schedule(mobility_schedule(
        24, mcfg, rng.next(), t0, t0 + sim::Duration::from_sec(2.0)));
    pads::PadsRoundReport r;
    ASSERT_NO_THROW(r = sim.run_round()) << "trial " << trial;
    // Whatever churn did, no healthy device may be called untrusted.
    EXPECT_EQ(r.false_untrusted, 0u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cra::net
