// Accounting invariants under loss, tamper, and random traffic.
//
// The observability layer leans on two exact identities of the network's
// ledgers, whatever the fault injection does:
//
//   (1) sum over links of per_link_bytes == bytes_transmitted
//   (2) messages_sent + messages_dropped == messages_attempted
//
// Both were violated before the per-link drop-charging fix; this suite
// hammers them with randomized traffic so they stay invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace cra::net {
namespace {

struct TrafficTotals {
  std::uint64_t attempts = 0;
};

TrafficTotals random_traffic(Network& n, sim::Scheduler& sched, std::uint64_t seed) {
  Rng rng(seed);
  TrafficTotals totals;
  const std::uint32_t nodes = 16;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(nodes));
    auto dst = static_cast<NodeId>(rng.next_below(nodes));
    if (dst == src) dst = (dst + 1) % nodes;
    const std::size_t size = 1 + rng.next_below(64);
    if (rng.next_below(8) == 0) {
      const std::uint32_t hops = 1 + static_cast<std::uint32_t>(
          rng.next_below(4));
      n.send_multihop(src, dst, hops, 1, Bytes(size, 0x5a));
    } else {
      n.send(src, dst, 1, Bytes(size, 0x5a));
    }
    ++totals.attempts;
  }
  sched.run();
  return totals;
}

class LossyAccounting : public ::testing::TestWithParam<double> {};

TEST_P(LossyAccounting, LedgersAgreeUnderRandomTraffic) {
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    sim::Scheduler sched;
    LinkParams params;
    params.header_bytes = 4;
    Network n(sched, params);
    n.set_handler([](const Message&) {});
    n.enable_per_link_accounting(true);
    n.set_loss_rate(GetParam(), seed * 13 + 1);
    const TrafficTotals totals = random_traffic(n, sched, seed);

    EXPECT_EQ(n.per_link_total(), n.bytes_transmitted());
    EXPECT_NO_THROW(n.assert_ledgers_consistent());
    EXPECT_EQ(n.messages_sent() + n.messages_dropped(),
              n.messages_attempted());
    EXPECT_EQ(n.messages_attempted(), totals.attempts);
    if (GetParam() == 0.0) EXPECT_EQ(n.messages_dropped(), 0u);
    if (GetParam() == 1.0) EXPECT_EQ(n.messages_sent(), 0u);
  }
}

TEST_P(LossyAccounting, BoundMetricsMatchLedgersUnderRandomTraffic) {
  sim::Scheduler sched;
  Network n(sched, LinkParams{});
  n.set_handler([](const Message&) {});
  obs::MetricsRegistry reg;
  n.bind_metrics(&reg);
  n.enable_per_link_accounting(true);
  n.set_loss_rate(GetParam(), /*seed=*/99);
  random_traffic(n, sched, /*seed=*/42);

  EXPECT_EQ(reg.counter_value("net.bytes_transmitted"),
            n.bytes_transmitted());
  EXPECT_EQ(reg.counter_value("net.per_link_bytes"), n.per_link_total());
  EXPECT_EQ(reg.counter_value("net.messages_attempted"),
            n.messages_attempted());
  EXPECT_EQ(reg.counter_value("net.messages_sent") +
                reg.counter_value("net.messages_dropped"),
            reg.counter_value("net.messages_attempted"));
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyAccounting,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

TEST(Accounting, ConsistencyCheckIsNoopWithoutPerLink) {
  sim::Scheduler sched;
  Network n(sched, LinkParams{});
  n.set_handler([](const Message&) {});
  n.send(1, 2, 1, Bytes(20, 0));
  sched.run();
  EXPECT_EQ(n.per_link_total(), 0u);  // map never populated
  EXPECT_NO_THROW(n.assert_ledgers_consistent());
}

}  // namespace
}  // namespace cra::net
