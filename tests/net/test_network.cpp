#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace cra::net {
namespace {

struct Fixture {
  sim::Scheduler scheduler;
  LinkParams params;
  std::vector<Message> delivered;

  explicit Fixture(LinkParams p = {}) : params(p) {}

  Network make() {
    Network n(scheduler, params);
    n.set_handler([this](const Message& m) { delivered.push_back(m); });
    return n;
  }
};

TEST(Network, DeliversWithTransmissionDelay) {
  Fixture f;
  f.params.rate_bps = 250'000;
  f.params.per_hop_latency = sim::Duration::from_ms(1);
  Network n = f.make();
  n.send(1, 2, 7, Bytes(20, 0xab));  // 160 bits -> 640 µs + 1 ms
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].src, 1u);
  EXPECT_EQ(f.delivered[0].dst, 2u);
  EXPECT_EQ(f.delivered[0].kind, 7u);
  EXPECT_EQ(f.scheduler.now(), sim::SimTime::from_us(1640));
}

TEST(Network, LinkDelayMatchesModel) {
  Fixture f;
  Network n = f.make();
  EXPECT_EQ(n.link_delay(20),
            sim::transmission_delay(160, f.params.rate_bps) +
                f.params.per_hop_latency);
}

TEST(Network, DownedLinkDropsDirectionally) {
  Fixture f;
  Network n = f.make();
  n.set_link_down(1, 2, true);
  EXPECT_TRUE(n.link_is_down(1, 2));
  EXPECT_FALSE(n.link_is_down(2, 1)) << "outages are directed";
  EXPECT_EQ(n.links_down(), 1u);
  n.send(1, 2, 7, Bytes(20, 0xab));  // eaten by the outage
  n.send(2, 1, 7, Bytes(20, 0xcd));  // reverse direction still up
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].src, 2u);
  // A downed-link drop is charged like a loss: the ledger must balance.
  EXPECT_EQ(n.messages_sent(), 1u);
  EXPECT_EQ(n.messages_dropped(), 1u);
  EXPECT_EQ(n.messages_attempted(), 2u);
}

TEST(Network, HealedLinkCarriesTrafficAgain) {
  Fixture f;
  Network n = f.make();
  n.set_link_down(1, 2, true);
  n.send(1, 2, 7, Bytes(8, 0));
  n.set_link_down(1, 2, false);
  n.send(1, 2, 7, Bytes(8, 1));
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].payload[0], 1u);
  EXPECT_EQ(n.links_down(), 0u);
}

TEST(Network, ClearLinkFaultsRestoresEverything) {
  Fixture f;
  Network n = f.make();
  n.set_link_down(1, 2, true);
  n.set_link_down(3, 4, true);
  EXPECT_EQ(n.links_down(), 2u);
  n.clear_link_faults();
  EXPECT_EQ(n.links_down(), 0u);
  n.send(1, 2, 7, Bytes(8, 0));
  n.send(3, 4, 7, Bytes(8, 0));
  f.scheduler.run();
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(Network, DownedLinkDoesNotConsumeALossDraw) {
  // A deterministic outage drop happens *before* the probabilistic loss
  // check and must not consume a draw from the loss stream: every other
  // message's fate is as if the eaten message had never been sent. (This
  // is what keeps fault replay deterministic — outages can differ per
  // scenario without desynchronizing the loss RNG.)
  const auto run = [](bool send_doomed) {
    Fixture f;
    Network n = f.make();
    n.set_loss_rate(0.5, /*seed=*/7);
    n.set_link_down(9, 10, true);
    if (send_doomed) n.send(9, 10, 1, Bytes(4, 0));  // eaten by the outage
    for (std::uint8_t i = 0; i < 50; ++i) {
      n.send(1, 2, 1, Bytes(1, i));
    }
    f.scheduler.run();
    std::vector<std::uint8_t> seen;
    for (const Message& m : f.delivered) {
      if (m.src == 1) seen.push_back(m.payload[0]);
    }
    return seen;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Network, AccountsBytes) {
  Fixture f;
  Network n = f.make();
  n.send(0, 1, 1, Bytes(20, 0));
  n.send(1, 0, 2, Bytes(24, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_transmitted(), 44u);
  EXPECT_EQ(n.messages_sent(), 2u);
  n.reset_accounting();
  EXPECT_EQ(n.bytes_transmitted(), 0u);
  EXPECT_EQ(n.messages_sent(), 0u);
}

TEST(Network, HeaderBytesCharged) {
  Fixture f;
  f.params.header_bytes = 8;
  Network n = f.make();
  n.send(0, 1, 1, Bytes(20, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_transmitted(), 28u);
}

TEST(Network, MultihopChargesEveryLink) {
  Fixture f;
  Network n = f.make();
  n.send_multihop(0, 9, 4, 1, Bytes(10, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_transmitted(), 40u);  // 10 bytes x 4 links
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.scheduler.now(), n.link_delay(10) * 4);
}

TEST(Network, MultihopZeroHopsThrows) {
  Fixture f;
  Network n = f.make();
  EXPECT_THROW(n.send_multihop(0, 1, 0, 1, Bytes{}), std::invalid_argument);
}

TEST(Network, PerLinkAccountingOptIn) {
  Fixture f;
  Network n = f.make();
  n.enable_per_link_accounting(true);
  n.send(3, 4, 1, Bytes(20, 0));
  n.send(3, 4, 1, Bytes(20, 0));
  n.send(4, 3, 1, Bytes(12, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_on_link(3, 4), 40u);
  EXPECT_EQ(n.bytes_on_link(4, 3), 12u);
  EXPECT_EQ(n.bytes_on_link(9, 9), 0u);
}

TEST(Network, LossDropsApproximatelyP) {
  Fixture f;
  Network n = f.make();
  n.set_loss_rate(0.3, /*seed=*/11);
  for (int i = 0; i < 2000; ++i) n.send(0, 1, 1, Bytes(4, 0));
  f.scheduler.run();
  const double loss =
      static_cast<double>(n.messages_dropped()) / 2000.0;
  EXPECT_NEAR(loss, 0.3, 0.04);
  EXPECT_EQ(f.delivered.size(), 2000u - n.messages_dropped());
}

TEST(Network, LossStillChargesAirTime) {
  Fixture f;
  Network n = f.make();
  n.set_loss_rate(1.0);
  n.send(0, 1, 1, Bytes(20, 0));
  f.scheduler.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(n.bytes_transmitted(), 20u);  // bits crossed the air
}

TEST(Network, InvalidLossRateThrows) {
  Fixture f;
  Network n = f.make();
  EXPECT_THROW(n.set_loss_rate(-0.1), std::invalid_argument);
  EXPECT_THROW(n.set_loss_rate(1.1), std::invalid_argument);
}

TEST(Network, TamperHookCanDrop) {
  Fixture f;
  Network n = f.make();
  n.set_tamper_hook([](const Message&) {
    return TamperResult{TamperAction::kDrop, {}};
  });
  n.send(0, 1, 1, Bytes(4, 0));
  f.scheduler.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(n.messages_dropped(), 1u);
}

TEST(Network, TamperHookCanModify) {
  Fixture f;
  Network n = f.make();
  n.set_tamper_hook([](const Message& m) {
    Bytes evil = m.payload;
    evil[0] = static_cast<std::uint8_t>(evil[0] ^ 0xff);
    return TamperResult{TamperAction::kDeliverModified, std::move(evil)};
  });
  n.send(0, 1, 1, Bytes{0x01, 0x02});
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].payload, (Bytes{0xfe, 0x02}));
}

TEST(Network, SerializeTxQueuesBackToBackSends) {
  Fixture f;
  f.params.serialize_tx = true;
  f.params.per_hop_latency = sim::Duration::zero();
  Network n = f.make();
  // Two 20-byte messages from the same node: the second waits for the
  // first transmission (640 us each).
  n.send(1, 2, 1, Bytes(20, 0));
  n.send(1, 3, 1, Bytes(20, 0));
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.scheduler.now(), sim::SimTime::from_us(1280));
}

TEST(Network, SerializeTxIndependentAcrossNodes) {
  Fixture f;
  f.params.serialize_tx = true;
  f.params.per_hop_latency = sim::Duration::zero();
  Network n = f.make();
  n.send(1, 9, 1, Bytes(20, 0));
  n.send(2, 9, 1, Bytes(20, 0));  // different radio: parallel
  f.scheduler.run();
  EXPECT_EQ(f.scheduler.now(), sim::SimTime::from_us(640));
}

TEST(Network, SerializeTxOffIsTheTcaModel) {
  Fixture f;  // default: serialize_tx = false
  f.params.per_hop_latency = sim::Duration::zero();
  Network n = f.make();
  n.send(1, 2, 1, Bytes(20, 0));
  n.send(1, 3, 1, Bytes(20, 0));
  f.scheduler.run();
  EXPECT_EQ(f.scheduler.now(), sim::SimTime::from_us(640));
}

TEST(Network, DropsChargedToPerLinkLedger) {
  // Regression: lost messages burn air time and were charged to
  // bytes_transmitted() but NOT to the per-link map, so the two ledgers
  // disagreed under loss.
  Fixture f;
  Network n = f.make();
  n.enable_per_link_accounting(true);
  n.set_loss_rate(1.0);
  n.send(1, 2, 1, Bytes(20, 0));
  f.scheduler.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(n.bytes_transmitted(), 20u);
  EXPECT_EQ(n.bytes_on_link(1, 2), 20u);
  EXPECT_EQ(n.per_link_total(), n.bytes_transmitted());
  EXPECT_NO_THROW(n.assert_ledgers_consistent());
}

TEST(Network, TamperDropChargedToPerLinkLedger) {
  Fixture f;
  Network n = f.make();
  n.enable_per_link_accounting(true);
  n.set_tamper_hook([](const Message&) {
    return TamperResult{TamperAction::kDrop, {}};
  });
  n.send(1, 2, 1, Bytes(12, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_on_link(1, 2), 12u);
  EXPECT_EQ(n.per_link_total(), n.bytes_transmitted());
  EXPECT_NO_THROW(n.assert_ledgers_consistent());
}

TEST(Network, AttemptsSplitExactlyIntoSentAndDropped) {
  Fixture f;
  Network n = f.make();
  n.set_loss_rate(0.3, /*seed=*/7);
  for (int i = 0; i < 500; ++i) n.send(0, 1, 1, Bytes(4, 0));
  f.scheduler.run();
  EXPECT_EQ(n.messages_attempted(), 500u);
  EXPECT_EQ(n.messages_sent() + n.messages_dropped(), n.messages_attempted());
  EXPECT_EQ(f.delivered.size(), n.messages_sent());
}

TEST(Network, ResetAccountingClearsRadioBacklog) {
  // Regression: reset_accounting() left serialize_tx radio reservations
  // in place, so the next measurement window inherited queued radios.
  Fixture f;
  f.params.serialize_tx = true;
  f.params.per_hop_latency = sim::Duration::zero();
  Network n = f.make();
  // Two 20-byte sends reserve node 1's radio until 1280 µs.
  n.send(1, 2, 1, Bytes(20, 0));
  n.send(1, 3, 1, Bytes(20, 0));
  n.reset_accounting();
  // A fresh window: this send must start immediately (640 µs), not queue
  // behind the pre-reset backlog (which would deliver at 1920 µs).
  n.send(1, 4, 1, Bytes(20, 0));
  f.scheduler.run();
  ASSERT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.scheduler.now(), sim::SimTime::from_us(1280));
}

TEST(Network, BindMetricsMirrorsLedgers) {
  Fixture f;
  Network n = f.make();
  obs::MetricsRegistry reg;
  n.bind_metrics(&reg);
  n.enable_per_link_accounting(true);
  n.send(1, 2, 1, Bytes(20, 0));
  n.send(2, 1, 1, Bytes(10, 0));
  f.scheduler.run();
  EXPECT_EQ(reg.counter_value("net.bytes_transmitted"), n.bytes_transmitted());
  EXPECT_EQ(reg.counter_value("net.messages_sent"), n.messages_sent());
  EXPECT_EQ(reg.counter_value("net.messages_dropped"), n.messages_dropped());
  EXPECT_EQ(reg.counter_value("net.messages_attempted"),
            n.messages_attempted());
  EXPECT_EQ(reg.counter_value("net.per_link_bytes"), n.per_link_total());
  const obs::Histogram* h = reg.find_histogram("net.payload_bytes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->sum(), 30u);
  // reset_accounting keeps both views in lock-step.
  n.reset_accounting();
  EXPECT_EQ(reg.counter_value("net.bytes_transmitted"), 0u);
  EXPECT_EQ(h->count(), 0u);
  // Unbinding stops the mirroring without touching the internal ledgers.
  n.bind_metrics(nullptr);
  n.send(1, 2, 1, Bytes(8, 0));
  f.scheduler.run();
  EXPECT_EQ(n.bytes_transmitted(), 8u);
  EXPECT_EQ(reg.counter_value("net.bytes_transmitted"), 0u);
}

TEST(Network, SendWithoutHandlerThrows) {
  sim::Scheduler s;
  Network n(s, LinkParams{});
  EXPECT_THROW(n.send(0, 1, 1, Bytes{}), std::logic_error);
}

TEST(Network, ZeroRateRejected) {
  sim::Scheduler s;
  LinkParams p;
  p.rate_bps = 0;
  EXPECT_THROW(Network(s, p), std::invalid_argument);
}

}  // namespace
}  // namespace cra::net
