#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cra::net {
namespace {

TEST(Tree, BalancedBinaryGeometry) {
  const Tree t = balanced_kary_tree(6);  // 7 nodes: heap 0..6
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.device_count(), 6u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_EQ(t.parent(5), 2u);
  ASSERT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.children(0)[0], 1u);
  EXPECT_EQ(t.children(0)[1], 2u);
  EXPECT_TRUE(t.is_leaf(3));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(6), 2u);
  EXPECT_EQ(t.max_depth(), 2u);
  EXPECT_EQ(t.edge_count(), 6u);
}

TEST(Tree, Lemma1DegreeBound) {
  // Lemma 1: in SAP's balanced binary tree every node has degree O(1):
  // root <= 2, inner <= 3, leaf = 1.
  for (std::uint32_t n : {1u, 2u, 5u, 31u, 100u, 1023u, 4096u}) {
    const Tree t = balanced_kary_tree(n);
    EXPECT_LE(t.max_degree(), 3u) << "N=" << n;
    EXPECT_LE(t.degree(0), 2u);
  }
}

TEST(Tree, DepthIsLogarithmic) {
  // Equation 10: depth == ceil-ish log2(N+2) - 1 for the heap layout.
  for (std::uint32_t n : {2u, 6u, 14u, 30u, 62u, 1022u}) {
    const Tree t = balanced_kary_tree(n);  // full trees
    const auto expected = static_cast<std::uint32_t>(
        std::log2(static_cast<double>(n) + 2.0) - 1.0 + 0.5);
    EXPECT_EQ(t.max_depth(), expected) << "N=" << n;
  }
}

TEST(Tree, HopsViaLca) {
  const Tree t = balanced_kary_tree(14);  // perfect tree, depth 3
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 7), 3u);
  EXPECT_EQ(t.hops(7, 8), 2u);   // siblings under node 3
  EXPECT_EQ(t.hops(7, 14), 6u);  // across the root
  EXPECT_EQ(t.hops(3, 1), 1u);
}

TEST(Tree, RejectsMalformedParentArrays) {
  EXPECT_THROW(Tree({}), std::invalid_argument);
  EXPECT_THROW(Tree({0}), std::invalid_argument);            // root parent
  EXPECT_THROW(Tree({kNoNode, 2, 1}), std::invalid_argument);  // forward ref
}

TEST(Tree, LineAndStarShapes) {
  const Tree line = line_tree(5);
  EXPECT_EQ(line.max_depth(), 5u);
  EXPECT_LE(line.max_degree(), 2u);
  const Tree star = star_tree(5);
  EXPECT_EQ(star.max_depth(), 1u);
  EXPECT_EQ(star.max_degree(), 5u);  // the naive topology's flaw
}

TEST(Tree, RandomTreeRespectsMaxChildren) {
  Rng rng(99);
  const Tree t = random_tree(500, 3, rng);
  EXPECT_EQ(t.device_count(), 500u);
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_LE(t.children(n).size(), 3u);
  }
}

TEST(Tree, RandomTreeDeterministicPerSeed) {
  Rng a(5), b(5);
  const Tree ta = random_tree(100, 2, a);
  const Tree tb = random_tree(100, 2, b);
  for (NodeId n = 1; n < ta.size(); ++n) {
    EXPECT_EQ(ta.parent(n), tb.parent(n));
  }
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);  // out of range
}

TEST(Graph, BfsSpanningTreeCoversAllNodes) {
  Rng rng(17);
  const Graph g = random_connected_graph(200, 150, rng);
  ASSERT_TRUE(g.connected());
  std::vector<NodeId> labels;
  const Tree t = g.bfs_spanning_tree(0, &labels);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_EQ(labels.size(), 200u);
  EXPECT_EQ(labels[0], 0u);  // root keeps label 0
}

TEST(Graph, BfsSpanningTreeMinimizesDepth) {
  // In a cycle of 6 nodes, BFS from 0 yields depth 3 (not 5).
  Graph g(6);
  for (NodeId i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  const Tree t = g.bfs_spanning_tree(0);
  EXPECT_EQ(t.max_depth(), 3u);
}

TEST(Graph, DisconnectedSpanningTreeThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.bfs_spanning_tree(0), std::invalid_argument);
}

TEST(Graph, RandomConnectedGraphIsConnected) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    EXPECT_TRUE(random_connected_graph(100, 50, rng).connected());
  }
}

}  // namespace
}  // namespace cra::net
