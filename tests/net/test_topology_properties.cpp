// Randomized topology invariants (property sweep over seeds).
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace cra::net {
namespace {

class TopologyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyProperties, RandomTreeInvariants) {
  Rng rng(GetParam());
  const auto n = static_cast<std::uint32_t>(2 + rng.next_below(300));
  const auto k = static_cast<std::uint32_t>(1 + rng.next_below(5));
  const Tree t = random_tree(n, k, rng);

  // Every non-root node appears exactly once as someone's child.
  std::uint32_t child_total = 0;
  std::vector<bool> seen(t.size(), false);
  for (NodeId p = 0; p < t.size(); ++p) {
    for (NodeId c : t.children(p)) {
      EXPECT_FALSE(seen[c]);
      seen[c] = true;
      EXPECT_EQ(t.parent(c), p);
      EXPECT_EQ(t.depth(c), t.depth(p) + 1);
      ++child_total;
    }
  }
  EXPECT_EQ(child_total, t.size() - 1);
  EXPECT_EQ(t.edge_count(), t.size() - 1);

  // Degree bound from the construction.
  for (NodeId p = 0; p < t.size(); ++p) {
    EXPECT_LE(t.children(p).size(), k);
  }

  // max_depth is attained and never exceeded.
  std::uint32_t deepest = 0;
  for (NodeId x = 0; x < t.size(); ++x) {
    deepest = std::max(deepest, t.depth(x));
  }
  EXPECT_EQ(deepest, t.max_depth());
}

TEST_P(TopologyProperties, HopMetricProperties) {
  Rng rng(GetParam() ^ 0x9999);
  const auto n = static_cast<std::uint32_t>(2 + rng.next_below(200));
  const Tree t = random_tree(n, 3, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<NodeId>(rng.next_below(t.size()));
    const auto b = static_cast<NodeId>(rng.next_below(t.size()));
    const auto c = static_cast<NodeId>(rng.next_below(t.size()));
    EXPECT_EQ(t.hops(a, b), t.hops(b, a));                 // symmetry
    EXPECT_EQ(t.hops(a, a), 0u);                           // identity
    EXPECT_LE(t.hops(a, b), t.hops(a, c) + t.hops(c, b));  // triangle
    EXPECT_LE(t.hops(a, b), t.depth(a) + t.depth(b));      // via root
    EXPECT_EQ(t.hops(0, a), t.depth(a));                   // root distance
  }
}

TEST_P(TopologyProperties, BfsTreeMinimizesEccentricityFromRoot) {
  Rng rng(GetParam() ^ 0x7777);
  const auto n = static_cast<std::uint32_t>(5 + rng.next_below(150));
  const Graph g = random_connected_graph(n, n / 2, rng);
  ASSERT_TRUE(g.connected());
  const Tree t = g.bfs_spanning_tree(0);
  EXPECT_EQ(t.size(), n);
  // BFS layers: a child is exactly one deeper than its parent, and the
  // parent is a graph neighbor (we can't easily check the latter after
  // relabelling, but depth monotonicity must hold).
  for (NodeId x = 1; x < t.size(); ++x) {
    EXPECT_EQ(t.depth(x), t.depth(t.parent(x)) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperties,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cra::net
