// Power model vs Table III of the paper.
#include "power/power.hpp"

#include <gtest/gtest.h>

namespace cra::power {
namespace {

TEST(Power, MicazMatchesTable3) {
  const PowerEstimate e = estimate(micaz(), 20, 20);
  EXPECT_NEAR(e.leaf_mw, 0.3372, 1e-4);
  EXPECT_NEAR(e.inner_mw, 0.5516, 1e-4);
}

TEST(Power, TelosbMatchesTable3) {
  const PowerEstimate e = estimate(telosb(), 20, 20);
  EXPECT_NEAR(e.leaf_mw, 0.369, 1e-4);
  EXPECT_NEAR(e.inner_mw, 0.6282, 1e-4);
}

TEST(Power, InnerAlwaysCostsMoreThanLeaf) {
  for (const MoteProfile& mote : paper_motes()) {
    const PowerEstimate e = estimate(mote, 20, 20);
    EXPECT_GT(e.inner_mw, e.leaf_mw) << mote.name;
  }
}

TEST(Power, ScalesWithSecurityParameter) {
  // l = 256 (SHA-256 tokens) costs more than l = 160.
  const PowerEstimate sha1 = estimate(micaz(), 20, 20);
  const PowerEstimate sha256 = estimate(micaz(), 32, 32);
  EXPECT_GT(sha256.leaf_mw, sha1.leaf_mw);
  EXPECT_GT(sha256.inner_mw, sha1.inner_mw);
}

TEST(Power, ChildCountRaisesInnerCostOnly) {
  const PowerEstimate two = estimate(micaz(), 20, 20, 2);
  const PowerEstimate four = estimate(micaz(), 20, 20, 4);
  EXPECT_DOUBLE_EQ(two.leaf_mw, four.leaf_mw);
  EXPECT_GT(four.inner_mw, two.inner_mw);
  // Exactly 2 more token receptions + 2 more XOR aggregations.
  EXPECT_NEAR(four.inner_mw - two.inner_mw,
              2 * 20 * micaz().recv_per_byte + 2 * micaz().xor_op, 1e-9);
}

TEST(Power, ProfilesNamed) {
  EXPECT_EQ(micaz().name, "MICAz");
  EXPECT_EQ(telosb().name, "TelosB");
  EXPECT_EQ(paper_motes().size(), 2u);
}

}  // namespace
}  // namespace cra::power
