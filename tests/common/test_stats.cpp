#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cra {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance: m2 = 32 over n-1 = 7 (the population figure would
  // be 4.0 — Bessel's correction is what the repetition benches need).
  EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, TwoSamplesUseBessel) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);  // ((1-2)^2 + (3-2)^2) / (2-1)
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.0));
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  const std::vector<double> ys = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinear, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_linear({3, 3, 3}, {1, 2, 3}), std::invalid_argument);
}

TEST(FitLog2, ExactLogCurve) {
  std::vector<double> xs, ys;
  for (double n : {16.0, 64.0, 256.0, 1024.0, 65536.0}) {
    xs.push_back(n);
    ys.push_back(3.0 * std::log2(n) + 7.0);
  }
  const LinearFit fit = fit_log2(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLog2, RejectsNonPositiveX) {
  EXPECT_THROW(fit_log2({0.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_log2({-1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ModelSelection, LinearDataPrefersLinear) {
  std::vector<double> xs, ys;
  for (double n = 10; n <= 1e6; n *= 10) {
    xs.push_back(n);
    ys.push_back(40.0 * n);  // U_CA shape
  }
  EXPECT_GT(linear_vs_log_preference(xs, ys), 0.1);
}

TEST(ModelSelection, LogDataPrefersLog) {
  std::vector<double> xs, ys;
  for (double n = 10; n <= 1e6; n *= 10) {
    xs.push_back(n);
    ys.push_back(0.02 * std::log2(n) + 0.5);  // T_CA shape
  }
  EXPECT_LT(linear_vs_log_preference(xs, ys), -0.1);
}

}  // namespace
}  // namespace cra
