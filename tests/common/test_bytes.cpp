#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace cra {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), data);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), data);  // uppercase accepted
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Xor, InPlace) {
  Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  xor_inplace(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(Xor, LengthMismatchThrows) {
  Bytes a = {1, 2, 3};
  const Bytes b = {1, 2};
  EXPECT_THROW(xor_inplace(a, b), std::invalid_argument);
  EXPECT_THROW(xor_bytes(a, b), std::invalid_argument);
}

TEST(Xor, SelfInverse) {
  // The property SAP's aggregation depends on: x ⊕ x = 0, and XOR of a
  // set of tokens is order-independent.
  const Bytes x = from_hex("0123456789abcdef0123456789abcdef01234567");
  EXPECT_TRUE(all_zero(xor_bytes(x, x)));
  const Bytes y = from_hex("fedcba9876543210fedcba9876543210fedcba98");
  const Bytes z = from_hex("00112233445566778899aabbccddeeff00112233");
  const Bytes xyz = xor_bytes(xor_bytes(x, y), z);
  const Bytes zyx = xor_bytes(xor_bytes(z, y), x);
  EXPECT_EQ(xyz, zyx);
}

TEST(AllZero, Detects) {
  EXPECT_TRUE(all_zero(Bytes{}));
  EXPECT_TRUE(all_zero(Bytes{0, 0, 0}));
  EXPECT_FALSE(all_zero(Bytes{0, 1, 0}));
}

TEST(IntCodec, U32RoundTrip) {
  Bytes buf;
  append_u32le(buf, 0xdeadbeefu);
  append_u32le(buf, 0);
  append_u32le(buf, 0xffffffffu);
  EXPECT_EQ(read_u32le(buf, 0), 0xdeadbeefu);
  EXPECT_EQ(read_u32le(buf, 4), 0u);
  EXPECT_EQ(read_u32le(buf, 8), 0xffffffffu);
}

TEST(IntCodec, U64RoundTrip) {
  Bytes buf;
  append_u64le(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(read_u64le(buf, 0), 0x0123456789abcdefULL);
}

TEST(IntCodec, OutOfRangeThrows) {
  const Bytes buf(3, 0);
  EXPECT_THROW(read_u32le(buf, 0), std::out_of_range);
  EXPECT_THROW(read_u64le(buf, 0), std::out_of_range);
}

TEST(ToBytes, CopiesCharacters) {
  EXPECT_EQ(to_bytes("ab"), (Bytes{'a', 'b'}));
  EXPECT_EQ(to_bytes(""), Bytes{});
}

}  // namespace
}  // namespace cra
