#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cra {
namespace {

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "sap")
      .field("n", std::uint64_t{42})
      .field("ratio", 2.5)
      .field("ok", true)
      .end_object();
  EXPECT_EQ(w.str(), R"({"name":"sap","n":42,"ratio":2.5,"ok":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object().key("list").begin_array();
  w.value(std::uint64_t{1}).value(std::uint64_t{2});
  w.begin_object().field("x", false).end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2,{"x":false}]})");
}

TEST(Json, Escaping) {
  JsonWriter w;
  w.begin_object().field("s", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NegativeAndNull) {
  JsonWriter w;
  w.begin_array().value(std::int64_t{-7}).null().end_array();
  EXPECT_EQ(w.str(), "[-7,null]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value("no key"), std::logic_error);
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.key("top-level key"), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);  // dangling key
  }
}

}  // namespace
}  // namespace cra
