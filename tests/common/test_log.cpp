#include "common/log.hpp"

#include <gtest/gtest.h>

namespace cra {
namespace {

struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelThresholding) {
  LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, MacroDoesNotEvaluateBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  CRA_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);  // formatting skipped entirely
  set_log_level(LogLevel::kDebug);
  CRA_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitAtEveryLevelDoesNotCrash) {
  LevelGuard guard;
  set_log_level(LogLevel::kTrace);
  CRA_LOG(kTrace, "t") << "trace " << 1;
  CRA_LOG(kDebug, "t") << "debug " << 2.5;
  CRA_LOG(kInfo, "t") << "info";
  CRA_LOG(kWarn, "t") << "warn";
  CRA_LOG(kError, "t") << "error";
  SUCCEED();
}

}  // namespace
}  // namespace cra
