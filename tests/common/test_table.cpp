#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cra {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"N", "time"});
  t.add_row({"10", "0.5"});
  t.add_row({"1000000", "0.61"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| N       | time |"), std::string::npos);
  EXPECT_NE(s.find("| 1000000 | 0.61 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(0.5, 1), "0.5");
  EXPECT_EQ(Table::num(-2.0, 2), "-2.00");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(999), "999");
  EXPECT_EQ(Table::count(1000), "1,000");
  EXPECT_EQ(Table::count(1000000), "1,000,000");
  EXPECT_EQ(Table::count(123456789), "123,456,789");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace cra
