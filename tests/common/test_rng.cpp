#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cra {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);  // law of large numbers
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20'000.0, 0.25, 0.02);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(21), b(21);
  EXPECT_EQ(a.next_bytes(33).size(), 33u);
  EXPECT_EQ(b.next_bytes(33), Rng(21).next_bytes(33));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng child_a = parent.fork("topology");
  Rng parent2(42);
  Rng child_b = parent2.fork("loss");
  EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace cra
