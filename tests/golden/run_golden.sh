#!/bin/sh
# Golden-output driver for the bench binaries.
#
#   run_golden.sh check  <golden_dir> <name> <threads> <binary> [args...]
#   run_golden.sh update <golden_dir> <name> <threads> <binary> [args...]
#
# Runs the bench with --threads and --metrics-json, then compares (or
# rewrites) two goldens:
#   <name>.stdout.golden   - the bench's stdout, byte-for-byte
#   <name>.metrics.golden  - the metrics JSON, normalized to one field
#                            per line with wall-clock gauges (wall.*)
#                            dropped, since those measure the host
#
# There is ONE golden per bench, not one per thread count: the whole
# point is that the sharded engine at any worker count reproduces the
# serial engine's output byte-for-byte. Wall-clock lines go to stderr
# by bench convention and never reach the comparison.
set -eu

mode=$1
dir=$2
name=$3
threads=$4
bin=$5
shift 5

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

if ! "$bin" --threads "$threads" --metrics-json "$work/metrics.json" "$@" \
    >"$work/stdout.txt" 2>"$work/stderr.txt"; then
  echo "FAIL: $name exited non-zero (threads=$threads)" >&2
  cat "$work/stderr.txt" >&2
  exit 1
fi

# Normalize the (single-line) JSON: one field per line, drop host-time
# gauges. Identical normalization on update and check.
tr ',' '\n' <"$work/metrics.json" | grep -v '"wall\.' >"$work/metrics.norm" || true

case $mode in
  update)
    cp "$work/stdout.txt" "$dir/$name.stdout.golden"
    cp "$work/metrics.norm" "$dir/$name.metrics.golden"
    echo "updated $name goldens"
    ;;
  check)
    status=0
    if ! diff -u "$dir/$name.stdout.golden" "$work/stdout.txt" >&2; then
      echo "FAIL: $name stdout drifted from golden (threads=$threads)" >&2
      status=1
    fi
    if ! diff -u "$dir/$name.metrics.golden" "$work/metrics.norm" >&2; then
      echo "FAIL: $name metrics drifted from golden (threads=$threads)" >&2
      status=1
    fi
    if [ "$status" -ne 0 ]; then
      echo "(regenerate intentionally changed goldens with:" >&2
      echo "  cmake --build build --target golden-update)" >&2
    fi
    exit $status
    ;;
  *)
    echo "unknown mode: $mode (want check|update)" >&2
    exit 2
    ;;
esac
