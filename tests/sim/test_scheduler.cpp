#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cra::sim {
namespace {

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_ms(30));
}

TEST(Scheduler, FifoAmongTies) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(SimTime::from_ms(7), [&, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  SimTime inner_seen;
  s.schedule_at(SimTime::from_ms(5), [&] {
    s.schedule_after(Duration::from_ms(10),
                     [&] { inner_seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner_seen, SimTime::from_ms(15));
}

TEST(Scheduler, RejectsPastScheduling) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::from_ms(5), [] {}),
               std::invalid_argument);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool ran = false;
  const EventHandle h =
      s.schedule_at(SimTime::from_ms(1), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  const EventHandle h = s.schedule_at(SimTime::from_ms(1), [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelAfterDispatchFails) {
  Scheduler s;
  const EventHandle h = s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, InertHandleCancelFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventHandle{}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  s.schedule_at(SimTime::from_ms(1), [&] { ++count; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++count; });
  s.schedule_at(SimTime::from_ms(3), [&] { ++count; });
  EXPECT_EQ(s.run_until(SimTime::from_ms(2)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), SimTime::from_ms(2));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilSkipsCancelledHead) {
  Scheduler s;
  bool late_ran = false;
  const EventHandle h = s.schedule_at(SimTime::from_ms(5), [] {});
  s.schedule_at(SimTime::from_ms(20), [&] { late_ran = true; });
  s.cancel(h);
  // The cancelled event at t=5 must not cause the t=20 event to run
  // inside run_until(10).
  EXPECT_EQ(s.run_until(SimTime::from_ms(10)), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.now(), SimTime::from_ms(10));
}

TEST(Scheduler, StepDispatchesOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(SimTime::from_ms(1), [&] { ++count; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      s.schedule_after(Duration::from_us(1), recurse);
    }
  };
  s.schedule_at(SimTime::zero(), recurse);
  EXPECT_EQ(s.run(), 100u);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), SimTime::from_us(99));
}

TEST(Scheduler, DispatchedCounterAccumulates) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(1), [] {});
  s.run();
  s.schedule_at(SimTime::from_ms(2), [] {});
  s.run();
  EXPECT_EQ(s.dispatched(), 2u);
}

TEST(Scheduler, PendingCountsLiveMinusCancelled) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(1), [] {});
  const EventHandle h = s.schedule_at(SimTime::from_ms(2), [] {});
  s.schedule_at(SimTime::from_ms(3), [] {});
  EXPECT_EQ(s.pending(), 3u);
  s.cancel(h);
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Scheduler, PendingNoUnderflowAfterCancelledHeadPurged) {
  // Regression: pending() used to subtract the raw cancelled-id count,
  // which underflowed to a huge value once a cancelled event had been
  // purged from the queue while bookkeeping lagged.
  Scheduler s;
  const EventHandle h = s.schedule_at(SimTime::from_ms(5), [] {});
  s.schedule_at(SimTime::from_ms(20), [] {});
  s.cancel(h);
  s.run_until(SimTime::from_ms(10));  // purges the cancelled head
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, PendingZeroAfterRunConsumesCancellations) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(1), [] {});
  const EventHandle h = s.schedule_at(SimTime::from_ms(2), [] {});
  s.cancel(h);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  s.schedule_at(SimTime::from_ms(9), [] {});
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunBeforeLimitIsExclusive) {
  Scheduler s;
  int count = 0;
  s.schedule_at(SimTime::from_ms(1), [&] { ++count; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++count; });
  s.schedule_at(SimTime::from_ms(3), [&] { ++count; });
  EXPECT_EQ(s.run_before(SimTime::from_ms(3)), 2u);
  EXPECT_EQ(count, 2);
  // Unlike run_until, now() stays at the last dispatched event: a
  // cross-shard arrival may still land anywhere in [now, limit).
  EXPECT_EQ(s.now(), SimTime::from_ms(2));
  EXPECT_NO_THROW(s.schedule_at(SimTime::from_ms(2), [] {}));
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Scheduler, RunBeforeOnEmptyQueueIsNoop) {
  Scheduler s;
  EXPECT_EQ(s.run_before(SimTime::from_ms(100)), 0u);
  EXPECT_EQ(s.now(), SimTime::zero());
}

TEST(Scheduler, PeekNextTimeSkipsCancelled) {
  Scheduler s;
  EXPECT_FALSE(s.peek_next_time().has_value());
  const EventHandle h = s.schedule_at(SimTime::from_ms(5), [] {});
  s.schedule_at(SimTime::from_ms(7), [] {});
  EXPECT_EQ(s.peek_next_time(), SimTime::from_ms(5));
  s.cancel(h);
  EXPECT_EQ(s.peek_next_time(), SimTime::from_ms(7));
}

}  // namespace
}  // namespace cra::sim
