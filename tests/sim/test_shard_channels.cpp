// Shard-boundary transports: the SPSC shared-memory ring, the process
// group, the metrics binary codec, and the acceptance gate for the
// zero-copy channel refactor — round digests byte-identical across
// transport {inproc, shm}, thread count, and shard-to-process placement
// for a fixed shard count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pads/pads.hpp"
#include "sap/swarm.hpp"
#include "sim/parallel.hpp"
#include "sim/process_group.hpp"
#include "sim/spsc_ring.hpp"

namespace cra::sim {
namespace {

// ---------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------

struct RingBuffer {
  explicit RingBuffer(std::uint32_t slots)
      : mem(::operator new(SpscRing::region_bytes(slots),
                           std::align_val_t(64))),
        ring(SpscRing::create(mem, slots)) {}
  ~RingBuffer() { ::operator delete(mem, std::align_val_t(64)); }
  void* mem;
  SpscRing* ring;
};

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return v;
}

TEST(SpscRing, RejectsNonPowerOfTwo) {
  alignas(64) std::uint8_t mem[4096];
  EXPECT_THROW(SpscRing::create(mem, 3), std::invalid_argument);
  EXPECT_THROW(SpscRing::create(mem, 0), std::invalid_argument);
  EXPECT_THROW(SpscRing::create(mem, 1), std::invalid_argument);
}

TEST(SpscRing, FifoRoundTripAcrossSizes) {
  RingBuffer rb(64);
  // Varying sizes force records of 1..several slots, including empty.
  const std::size_t sizes[] = {0, 1, 59, 60, 61, 64, 100, 200};
  for (int lap = 0; lap < 3; ++lap) {
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      const auto data = pattern(sizes[i], static_cast<std::uint8_t>(i));
      ASSERT_TRUE(rb.ring->try_push(data.data(),
                                    static_cast<std::uint32_t>(data.size())));
    }
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      std::uint32_t len = 0;
      const std::uint8_t* p = rb.ring->peek(len);
      ASSERT_NE(p, nullptr);
      const auto expect = pattern(sizes[i], static_cast<std::uint8_t>(i));
      ASSERT_EQ(len, expect.size());
      if (len != 0) EXPECT_EQ(std::memcmp(p, expect.data(), len), 0);
      rb.ring->pop();
    }
    EXPECT_TRUE(rb.ring->empty());
  }
}

TEST(SpscRing, WraparoundPadsAndRestartsAtZero) {
  RingBuffer rb(8);
  // 2-slot records against an 8-slot ring: the fourth push starts at
  // slot 6 with only 2 slots to the edge for a record needing... exactly
  // 2 — so go odd: 3-slot records (len 150) force a wrap pad quickly.
  const auto big = pattern(150, 7);
  const auto small = pattern(10, 9);
  ASSERT_TRUE(rb.ring->try_push(big.data(), 150));    // slots 0-2
  ASSERT_TRUE(rb.ring->try_push(small.data(), 10));   // slot 3
  std::uint32_t len = 0;
  ASSERT_NE(rb.ring->peek(len), nullptr);
  rb.ring->pop();  // free 0-2
  ASSERT_NE(rb.ring->peek(len), nullptr);
  rb.ring->pop();  // free 3
  // Tail at slot 4: a 3-slot record would straddle slot 8 — the
  // producer must pad 4-7 and write at 0.
  ASSERT_TRUE(rb.ring->try_push(big.data(), 150));
  const std::uint8_t* p = rb.ring->peek(len);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(len, 150u);
  EXPECT_EQ(std::memcmp(p, big.data(), 150), 0);
  rb.ring->pop();
  EXPECT_TRUE(rb.ring->empty());
}

TEST(SpscRing, FullRingBackpressure) {
  RingBuffer rb(8);
  const auto rec = pattern(60, 3);  // exactly one slot with header
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rb.ring->try_push(rec.data(), 60)) << i;
  }
  EXPECT_FALSE(rb.ring->try_push(rec.data(), 60));
  // Blocking push times out rather than spinning forever.
  EXPECT_FALSE(rb.ring->push(rec.data(), 60, /*timeout_ns=*/2'000'000));
  std::uint32_t len = 0;
  ASSERT_NE(rb.ring->peek(len), nullptr);
  rb.ring->pop();
  EXPECT_TRUE(rb.ring->try_push(rec.data(), 60));
}

TEST(SpscRing, OversizeRecordThrows) {
  RingBuffer rb(8);
  const std::size_t max = rb.ring->max_record_bytes();
  std::vector<std::uint8_t> too_big(max + 1, 0xAB);
  EXPECT_THROW(
      rb.ring->try_push(too_big.data(),
                        static_cast<std::uint32_t>(too_big.size())),
      std::invalid_argument);
  // The maximum itself must fit (the wrap-pad sizing guarantee).
  std::vector<std::uint8_t> exact(max, 0xCD);
  EXPECT_TRUE(rb.ring->try_push(exact.data(),
                                static_cast<std::uint32_t>(exact.size())));
}

TEST(SpscRing, TornSizeFieldRejected) {
  RingBuffer rb(8);
  const auto rec = pattern(20, 5);
  ASSERT_TRUE(rb.ring->try_push(rec.data(), 20));
  // Stomp the length prefix of the first record (it sits at slot 0,
  // right after the ring header) with a value larger than any record
  // this ring could hold.
  std::uint8_t* first_slot =
      static_cast<std::uint8_t*>(rb.mem) + sizeof(SpscRing);
  const std::uint32_t garbage = 0x7FFFFFF0u;
  std::memcpy(first_slot, &garbage, 4);
  std::uint32_t len = 0;
  EXPECT_THROW(rb.ring->peek(len), std::runtime_error);
}

TEST(SpscRing, LengthBeyondPublishedTailRejected) {
  RingBuffer rb(16);
  const auto rec = pattern(20, 5);  // 1 slot
  ASSERT_TRUE(rb.ring->try_push(rec.data(), 20));
  // A length that is legal for the ring but larger than what the
  // producer has published (1 slot) must also be rejected.
  std::uint8_t* first_slot =
      static_cast<std::uint8_t*>(rb.mem) + sizeof(SpscRing);
  const std::uint32_t garbage = 300;  // needs 5 slots, only 1 published
  std::memcpy(first_slot, &garbage, 4);
  std::uint32_t len = 0;
  EXPECT_THROW(rb.ring->peek(len), std::runtime_error);
}

TEST(SpscRing, CursorsSurviveUint32Wrap) {
  RingBuffer rb(8);
  // Park both free-running cursors just below 2^32; a few dozen pushes
  // then carry them through the wrap.
  rb.ring->reset_cursors(0xFFFFFFFFu - 19);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto rec = pattern(40, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(rb.ring->try_push(rec.data(), 40)) << i;
    std::uint32_t len = 0;
    const std::uint8_t* p = rb.ring->peek(len);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(len, 40u);
    EXPECT_EQ(std::memcmp(p, rec.data(), 40), 0) << i;
    rb.ring->pop();
  }
  EXPECT_TRUE(rb.ring->empty());
}

TEST(SpscRing, WaitNonemptyTimesOutOnEmptyRing) {
  RingBuffer rb(8);
  EXPECT_FALSE(rb.ring->wait_nonempty(/*timeout_ns=*/1'000'000));
  const auto rec = pattern(8, 1);
  ASSERT_TRUE(rb.ring->try_push(rec.data(), 8));
  EXPECT_TRUE(rb.ring->wait_nonempty(/*timeout_ns=*/1'000'000));
}

// ---------------------------------------------------------------------
// Metrics binary codec (the multi-process metrics reduction)
// ---------------------------------------------------------------------

TEST(MetricsBinaryCodec, RoundTripsEveryInstrument) {
  obs::MetricsRegistry src;
  src.counter("a.count").inc(41);
  src.counter("b.count").inc(0);
  src.gauge("a.gauge").set(-7);
  src.gauge("b.unset");
  src.histogram("a.hist").record(0);
  src.histogram("a.hist").record(17);
  src.histogram("a.hist").record(1u << 20);

  Bytes image;
  src.encode_binary(image);

  obs::MetricsRegistry dst;
  dst.merge_binary(BytesView(image));
  // merge_from parity: unset gauges do not travel (merge_from skips
  // them too), everything else round-trips byte-for-byte.
  obs::MetricsRegistry via_merge_from;
  via_merge_from.merge_from(src);
  EXPECT_EQ(dst.to_json(), via_merge_from.to_json());

  // Merging twice doubles counters/histogram counts, maxes gauges —
  // exactly merge_from semantics.
  dst.merge_binary(BytesView(image));
  EXPECT_EQ(dst.counter_value("a.count"), 82u);
  EXPECT_EQ(dst.gauge_value("a.gauge"), -7);
  EXPECT_EQ(dst.find_histogram("a.hist")->count(), 6u);
}

TEST(MetricsBinaryCodec, TruncatedImageThrows) {
  obs::MetricsRegistry src;
  src.counter("some.counter").inc(5);
  src.histogram("some.hist").record(123);
  Bytes image;
  src.encode_binary(image);
  for (const std::size_t cut : {1ul, 7ul, image.size() / 2, image.size() - 1}) {
    obs::MetricsRegistry dst;
    EXPECT_THROW(dst.merge_binary(BytesView(image.data(), cut)),
                 std::runtime_error)
        << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------
// ProcessGroup
// ---------------------------------------------------------------------

TEST(ProcessGroup, SpawnRunsEveryRankAndJoins) {
  ProcessGroup& pg = ProcessGroup::instance();
  const std::uint32_t rank = pg.spawn(3);
  EXPECT_EQ(pg.size(), 3u);
  if (rank != 0) pg.child_exit(0);
  EXPECT_EQ(rank, 0u);
  pg.join();
  EXPECT_EQ(pg.size(), 1u);  // reusable after join
}

TEST(ProcessGroup, JoinReportsNonzeroChildExit) {
  ProcessGroup& pg = ProcessGroup::instance();
  const std::uint32_t rank = pg.spawn(2);
  if (rank != 0) pg.child_exit(3);
  EXPECT_THROW(pg.join(), std::runtime_error);
  EXPECT_EQ(pg.size(), 1u);
}

// ---------------------------------------------------------------------
// Engine contract hardening
// ---------------------------------------------------------------------

TEST(EngineContract, ForeignThreadPostThrowsOnlyWhileRunning) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  cfg.transport = ShardTransport::kInproc;
  ParallelScheduler engine(4, cfg, Duration::from_ms(1));

  bool threw_while_running = false;
  engine.post(0, SimTime::from_ms(1), [&] {
    std::thread foreign([&] {
      try {
        engine.post(3, SimTime::from_ms(10), [] {});
      } catch (const std::logic_error&) {
        threw_while_running = true;
      }
    });
    foreign.join();
  });
  engine.run();
  EXPECT_TRUE(threw_while_running);

  // Idle engine: setup posts from any thread are the documented contract.
  bool ran = false;
  std::thread setup([&] {
    engine.post(3, engine.now() + Duration::from_ms(1), [&] { ran = true; });
  });
  setup.join();
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(EngineContract, ShmRejectsCrossShardClosures) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  cfg.transport = ShardTransport::kShm;
  ParallelScheduler engine(4, cfg, Duration::from_ms(1));
  engine.post(0, SimTime::from_ms(1), [&] {
    engine.post(3, SimTime::from_ms(5), [] {});  // closure across shards
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

// ---------------------------------------------------------------------
// Transport / placement digest equality (the acceptance gate)
// ---------------------------------------------------------------------

constexpr std::uint32_t kSapDevices = 10'000;
constexpr std::uint32_t kSapRounds = 2;

sap::SapConfig sap_config(std::uint32_t threads, ShardTransport transport,
                          std::uint32_t processes) {
  sap::SapConfig cfg;
  cfg.sim.threads = threads;
  cfg.sim.shards = 8;
  cfg.sim.transport = transport;
  cfg.sim.processes = processes;
  return cfg;
}

/// Everything deterministic about a SAP run, as one comparable string:
/// per-round timeline + verdict + the full merged metrics JSON.
std::string sap_fingerprint(sap::SapSimulation& swarm) {
  std::string fp;
  for (std::uint32_t r = 0; r < kSapRounds; ++r) {
    const sap::RoundReport rep = swarm.run_round();
    fp += std::to_string(rep.verified) + "/" +
          std::to_string(rep.chal_tick) + "/" +
          std::to_string(rep.t_chal.ns()) + "/" +
          std::to_string(rep.inbound_end.ns()) + "/" +
          std::to_string(rep.t_resp.ns()) + "/" +
          std::to_string(rep.u_ca_bytes) + "/" +
          std::to_string(rep.messages) + "/" +
          std::to_string(rep.responded) + "|";
    fp += swarm.metrics().to_json();
    swarm.advance_time(Duration::from_ms(250));
  }
  return fp;
}

TEST(TransportMatrix, SapDigestIdenticalAcrossTransportsAndThreads) {
  auto ref_sim =
      sap::SapSimulation::balanced(sap_config(1, ShardTransport::kInproc, 1),
                                   kSapDevices);
  const std::string ref = sap_fingerprint(ref_sim);
  for (const std::uint32_t threads : {2u, 8u}) {
    for (const ShardTransport t :
         {ShardTransport::kInproc, ShardTransport::kShm}) {
      auto swarm =
          sap::SapSimulation::balanced(sap_config(threads, t, 1), kSapDevices);
      EXPECT_EQ(sap_fingerprint(swarm), ref)
          << "threads=" << threads << " transport=" << static_cast<int>(t);
    }
  }
}

TEST(TransportMatrix, SapDigestIdenticalAcrossProcessPlacements) {
  auto ref_sim =
      sap::SapSimulation::balanced(sap_config(2, ShardTransport::kInproc, 1),
                                   kSapDevices);
  const std::string ref = sap_fingerprint(ref_sim);
  for (const std::uint32_t procs : {2u, 8u}) {
    // SPMD: construct before fork, every rank runs the same driver,
    // rank 0 (the parent — owns shard 0 and the verifier) asserts.
    auto swarm = sap::SapSimulation::balanced(
        sap_config(2, ShardTransport::kShm, procs), kSapDevices);
    ProcessGroup& pg = ProcessGroup::instance();
    const std::uint32_t rank = pg.spawn(procs);
    std::string fp;
    try {
      fp = sap_fingerprint(swarm);
    } catch (...) {
      if (rank != 0) pg.child_exit(2);
      throw;
    }
    if (rank != 0) pg.child_exit(0);
    pg.join();
    EXPECT_EQ(fp, ref) << "procs=" << procs;
  }
}

TEST(TransportMatrix, EngineDiesWhenPeerProcessDies) {
  auto swarm = sap::SapSimulation::balanced(
      sap_config(2, ShardTransport::kShm, 2), kSapDevices / 10);
  ProcessGroup& pg = ProcessGroup::instance();
  const std::uint32_t rank = pg.spawn(2);
  if (rank != 0) pg.child_exit(0);  // peer leaves before the round
  // The barrier watchdog must notice the dead peer and abandon the run
  // instead of parking forever.
  EXPECT_THROW(swarm.run_round(), std::runtime_error);
  pg.join();  // clean exit (code 0) — join itself succeeds
}

TEST(TransportMatrix, PadsDigestIdenticalAcrossTransports) {
  pads::PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.gossip_epochs = 8;
  cfg.sim.threads = 2;
  cfg.sim.shards = 4;
  // PADS gossip bursts exceed the default ring sizing — the overflow
  // diagnostic points here.
  cfg.sim.ring_slots = 1u << 15;
  cfg.sim.transport = ShardTransport::kInproc;
  auto a = pads::PadsSimulation::balanced(cfg, 2'000, /*seed=*/42);
  const std::string inproc_digest = a.run_round().digest;
  cfg.sim.transport = ShardTransport::kShm;
  auto b = pads::PadsSimulation::balanced(cfg, 2'000, /*seed=*/42);
  EXPECT_EQ(b.run_round().digest, inproc_digest);
}

// Satellite guarantee: warm inproc lanes stop reallocating — round 2
// pushes the same traffic into recycled capacity.
TEST(LaneRecycling, WarmLanesStopReallocating) {
  auto swarm = sap::SapSimulation::balanced(
      sap_config(2, ShardTransport::kInproc, 1), 2'000);
  (void)swarm.run_round();
  ASSERT_NE(swarm.engine(), nullptr);
  const std::uint64_t after_first = swarm.engine()->lane_reallocs();
  EXPECT_GT(swarm.engine()->cross_shard_posts(), 0u);
  swarm.advance_time(Duration::from_ms(250));
  (void)swarm.run_round();
  EXPECT_EQ(swarm.engine()->lane_reallocs(), after_first);
}

}  // namespace
}  // namespace cra::sim
