// ParallelScheduler: conservative-lookahead sharded engine.
//
// The determinism contract under test: a run is a pure function of
// (inputs, shard count) — independent of worker-thread count and OS
// scheduling — and with one shard the engine IS the classic Scheduler.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sap/swarm.hpp"
#include "seda/seda.hpp"

namespace cra::sim {
namespace {

TEST(ParallelScheduler, SingleShardForwardsToClassic) {
  // threads=1, shards=0 -> one shard: the engine is the classic queue.
  ParallelScheduler engine(8, SimConfig{}, Duration::from_ms(1));
  EXPECT_EQ(engine.shard_count(), 1u);

  std::vector<int> order;
  engine.post(3, SimTime::from_ms(30), [&] { order.push_back(3); });
  engine.post(5, SimTime::from_ms(10), [&] { order.push_back(1); });
  engine.post(0, SimTime::from_ms(20), [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), SimTime::from_ms(30));
  EXPECT_EQ(engine.epochs(), 0u);  // no barrier machinery involved
}

TEST(ParallelScheduler, ShardOfPartitionsContiguously) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 4;
  ParallelScheduler engine(10, cfg, Duration::from_ms(1));
  EXPECT_EQ(engine.shard_count(), 4u);
  // block = ceil(10/4) = 3: [0,2] [3,5] [6,8] [9].
  EXPECT_EQ(engine.shard_of(0), 0u);
  EXPECT_EQ(engine.shard_of(2), 0u);
  EXPECT_EQ(engine.shard_of(3), 1u);
  EXPECT_EQ(engine.shard_of(8), 2u);
  EXPECT_EQ(engine.shard_of(9), 3u);
  // Entities past the range still map to the last shard (no UB).
  EXPECT_EQ(engine.shard_of(57), 3u);
}

TEST(ParallelScheduler, ShardCountClampedToEntities) {
  SimConfig cfg;
  cfg.threads = 16;
  cfg.shards = 16;
  ParallelScheduler engine(3, cfg, Duration::from_ms(1));
  EXPECT_EQ(engine.shard_count(), 3u);
  EXPECT_LE(engine.threads(), 3u);
}

TEST(ParallelScheduler, RequiresPositiveLookaheadWhenSharded) {
  SimConfig cfg;
  cfg.threads = 2;
  EXPECT_THROW(ParallelScheduler(8, cfg, Duration::zero()),
               std::invalid_argument);
  // One shard needs no lookahead: nothing ever crosses a boundary.
  EXPECT_NO_THROW(ParallelScheduler(8, SimConfig{}, Duration::zero()));
}

TEST(ParallelScheduler, FifoAmongTiesWithinShard) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  ParallelScheduler engine(8, cfg, Duration::from_ms(1));

  // Five same-time events on one entity (= one shard): posted order wins.
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.post(1, SimTime::from_ms(7), [&, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelScheduler, CrossShardCausalityChain) {
  SimConfig cfg;
  cfg.threads = 2;
  cfg.shards = 2;
  // This test bounces raw closures across shards, which only the
  // in-process transport can carry — pin it so the CI shm matrix
  // (CRA_SHARD_TRANSPORT=shm) doesn't redirect the boundary.
  cfg.transport = ShardTransport::kInproc;
  const Duration hop = Duration::from_ms(1);
  ParallelScheduler engine(2, cfg, hop);

  // Ping-pong between the two shards: each hop adds exactly the
  // lookahead (the tightest legal cross-shard latency).
  std::vector<std::int64_t> arrivals;
  std::function<void(std::uint32_t, int)> bounce =
      [&](std::uint32_t entity, int hops_left) {
        arrivals.push_back(engine.shard_for(entity).now().ns());
        if (hops_left == 0) return;
        const std::uint32_t next = entity == 0 ? 1 : 0;
        engine.post(next, engine.shard_for(entity).now() + hop,
                    [&, next, hops_left] { bounce(next, hops_left - 1); });
      };
  engine.post(0, SimTime::from_ms(1), [&] { bounce(0, 6); });
  EXPECT_EQ(engine.run(), 7u);

  ASSERT_EQ(arrivals.size(), 7u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i],
              (SimTime::from_ms(1) + hop * static_cast<std::int64_t>(i)).ns());
  }
  EXPECT_EQ(engine.cross_shard_posts(), 6u);
  // run() leaves every shard at the same (global max) clock.
  EXPECT_EQ(engine.shard(0).now(), engine.shard(1).now());
}

TEST(ParallelScheduler, LookaheadViolationThrows) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  ParallelScheduler engine(2, cfg, Duration::from_ms(1));

  // A cross-shard post with zero latency lands inside the lookahead
  // window; the engine refuses rather than silently racing.
  engine.post(0, SimTime::from_ms(5), [&] {
    engine.post(1, engine.shard_for(0).now(), [] {});
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

// The workload for the thread-count determinism check: a deterministic
// cascade over 64 entities where every callback logs (entity-local time,
// sequence) and fans out to two other entities at >= lookahead latency.
std::vector<std::string> run_cascade(std::uint32_t threads) {
  SimConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;  // fixed: results must not depend on `threads`
  cfg.transport = ShardTransport::kInproc;  // raw closures cross shards
  const std::uint32_t kEntities = 64;
  const Duration hop = Duration::from_ms(1);
  ParallelScheduler engine(kEntities, cfg, hop);

  std::vector<std::string> logs(kEntities);
  std::function<void(std::uint32_t, std::uint32_t, int)> visit =
      [&](std::uint32_t entity, std::uint32_t tag, int depth) {
        logs[entity] += std::to_string(tag) + "@" +
                        std::to_string(engine.shard_for(entity).now().ns()) +
                        ";";
        if (depth == 0) return;
        const SimTime now = engine.shard_for(entity).now();
        const std::uint32_t a = (entity * 7 + 3) % kEntities;
        const std::uint32_t b = (entity * 13 + 11) % kEntities;
        engine.post(a, now + hop, [&, a, tag, depth] {
          visit(a, tag * 2 + 1, depth - 1);
        });
        engine.post(b, now + hop + Duration::from_us(500),
                    [&, b, tag, depth] { visit(b, tag * 2, depth - 1); });
      };
  for (std::uint32_t e = 0; e < kEntities; e += 9) {
    engine.post(e, SimTime::from_ms(1 + e % 5),
                [&, e] { visit(e, e, 5); });
  }
  engine.run();
  return logs;
}

TEST(ParallelScheduler, DeterministicAcrossThreadCounts) {
  const std::vector<std::string> serial = run_cascade(1);
  EXPECT_EQ(run_cascade(2), serial);
  EXPECT_EQ(run_cascade(8), serial);
}

TEST(ParallelScheduler, RunUntilAdvancesAllShardClocks) {
  SimConfig cfg;
  cfg.threads = 1;
  cfg.shards = 3;
  ParallelScheduler engine(9, cfg, Duration::from_ms(1));
  bool ran = false;
  engine.post(4, SimTime::from_ms(2), [&] { ran = true; });
  engine.run_until(SimTime::from_ms(10));
  EXPECT_TRUE(ran);
  EXPECT_EQ(engine.now(), SimTime::from_ms(10));
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(engine.shard(s).now(), SimTime::from_ms(10));
  }
}

// --- Protocol-level determinism: the ISSUE's acceptance bar ----------

std::string sap_digest(const sap::RoundReport& r) {
  std::ostringstream os;
  os << r.verified << '|' << r.chal_tick << '|' << r.t_chal.ns() << '|'
     << r.inbound_end.ns() << '|' << r.t_att.ns() << '|'
     << r.measurement_end.ns() << '|' << r.t_resp.ns() << '|' << r.u_ca_bytes
     << '|' << r.messages << '|' << r.dropped << '|' << r.devices << '|'
     << r.responded << '|' << r.repolls;
  return os.str();
}

std::string seda_digest(const seda::SedaRoundReport& r) {
  std::ostringstream os;
  os << r.verified << '|' << r.total << '|' << r.passed << '|' << r.t_req.ns()
     << '|' << r.t_resp.ns() << '|' << r.u_ca_bytes << '|' << r.messages
     << '|' << r.devices << '|' << r.mac_failures;
  return os.str();
}

std::string run_sap(std::uint32_t threads, std::uint32_t devices) {
  sap::SapConfig cfg;
  cfg.sim.threads = threads;
  auto sim = sap::SapSimulation::balanced(cfg, devices, /*seed=*/42);
  EXPECT_EQ(sim.parallel(), threads > 1);
  return sap_digest(sim.run_round());
}

TEST(ParallelProtocols, SapRoundDigestIdenticalAcrossThreads) {
  const std::uint32_t kDevices = 10'000;
  const std::string serial = run_sap(1, kDevices);
  EXPECT_EQ(run_sap(2, kDevices), serial);
  EXPECT_EQ(run_sap(8, kDevices), serial);
}

std::string run_seda(std::uint32_t threads, std::uint32_t devices) {
  seda::SedaConfig cfg;
  cfg.sim.threads = threads;
  auto sim = seda::SedaSimulation::balanced(cfg, devices, /*seed=*/42);
  EXPECT_EQ(sim.parallel(), threads > 1);
  return seda_digest(sim.run_round());
}

TEST(ParallelProtocols, SedaRoundDigestIdenticalAcrossThreads) {
  const std::uint32_t kDevices = 10'000;
  const std::string serial = run_seda(1, kDevices);
  EXPECT_EQ(run_seda(2, kDevices), serial);
  EXPECT_EQ(run_seda(8, kDevices), serial);
}

TEST(ParallelProtocols, SapMultiRoundAndAdversaryUnderSharding) {
  // Compromise + unresponsiveness must localize identically in both
  // engines across consecutive rounds.
  auto run = [](std::uint32_t threads) {
    sap::SapConfig cfg;
    cfg.sim.threads = threads;
    auto sim = sap::SapSimulation::balanced(cfg, 1'000, /*seed=*/7);
    std::string digest;
    digest += sap_digest(sim.run_round()) + "#";
    sim.compromise_device(137);
    digest += sap_digest(sim.run_round()) + "#";
    sim.restore_device(137);
    sim.set_device_unresponsive(512, true);
    digest += sap_digest(sim.run_round()) + "#";
    return digest;
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(4), serial);
}

TEST(ParallelProtocols, SapLossyRunReproducibleForFixedShards) {
  // Loss draws come from per-shard sub-streams: with `shards` pinned,
  // the thread count must not change which packets die.
  auto run = [](std::uint32_t threads) {
    sap::SapConfig cfg;
    cfg.retransmit = true;
    cfg.sim.threads = threads;
    cfg.sim.shards = 4;
    auto sim = sap::SapSimulation::balanced(cfg, 2'000, /*seed=*/11);
    sim.network().set_loss_rate(0.02, /*seed=*/99);
    return sap_digest(sim.run_round());
  };
  const std::string two = run(2);
  EXPECT_EQ(run(1), two);
  EXPECT_EQ(run(4), two);
}

TEST(ParallelProtocols, TamperHooksRejectedUnderSharding) {
  sap::SapConfig cfg;
  cfg.sim.threads = 2;
  auto sim = sap::SapSimulation::balanced(cfg, 64);
  ASSERT_TRUE(sim.parallel());
  sim.network().set_tamper_hook(
      [](const net::Message&) { return net::TamperResult{}; });
  EXPECT_THROW(sim.run_round(), std::logic_error);
}

TEST(ParallelProtocols, SedaJoinThenRoundUnderSharding) {
  auto run = [](std::uint32_t threads) {
    seda::SedaConfig cfg;
    cfg.sim.threads = threads;
    auto sim = seda::SedaSimulation::balanced(cfg, 500, /*seed=*/3);
    const auto join = sim.run_join();
    EXPECT_TRUE(join.complete);
    return seda_digest(sim.run_round());
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(4), serial);
}

}  // namespace
}  // namespace cra::sim
