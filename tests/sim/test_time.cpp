#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace cra::sim {
namespace {

TEST(SimTime, Constructors) {
  EXPECT_EQ(SimTime::zero().ns(), 0);
  EXPECT_EQ(SimTime::from_ns(5).ns(), 5);
  EXPECT_EQ(SimTime::from_us(5).ns(), 5'000);
  EXPECT_EQ(SimTime::from_ms(5).ns(), 5'000'000);
  EXPECT_EQ(SimTime::from_sec(1.5).ns(), 1'500'000'000);
}

TEST(SimTime, Conversions) {
  const SimTime t = SimTime::from_ms(1250);
  EXPECT_DOUBLE_EQ(t.sec(), 1.25);
  EXPECT_DOUBLE_EQ(t.ms(), 1250.0);
  EXPECT_DOUBLE_EQ(t.us(), 1'250'000.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_ms(3);
  const SimTime b = SimTime::from_ms(2);
  EXPECT_EQ((a + b).ms(), 5.0);
  EXPECT_EQ((a - b).ms(), 1.0);
  EXPECT_EQ((b * 4).ms(), 8.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.ms(), 5.0);
  c -= a;
  EXPECT_EQ(c.ms(), 2.0);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::from_ns(1), SimTime::from_ns(2));
  EXPECT_EQ(SimTime::from_us(1), SimTime::from_ns(1000));
  EXPECT_GE(SimTime::from_ms(1), SimTime::from_us(1000));
}

// Regression: from_sec used to truncate `sec * 1e9`, so seconds whose
// nanosecond product is not exactly representable in double landed 1 ns
// short (2.9 * 1e9 computes as 2899999999.9999995). A ServicePolicy
// period built from such a value drifted off the secure-clock tick grid
// by one nanosecond per round. from_sec now rounds to nearest.
TEST(SimTime, FromSecRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_sec(2.9).ns(), 2'900'000'000);
  EXPECT_EQ(SimTime::from_sec(0.3).ns(), 300'000'000);
  EXPECT_EQ(SimTime::from_sec(4.7).ns(), 4'700'000'000);
  EXPECT_EQ(SimTime::from_sec(-2.9).ns(), -2'900'000'000);
  // Exactly-representable values stay exact.
  EXPECT_EQ(SimTime::from_sec(2.0).ns(), 2'000'000'000);
  EXPECT_EQ(SimTime::from_sec(0.5).ns(), 500'000'000);
}

// Second -> nanosecond -> second round-trips are the identity for the
// values service policies are configured with.
TEST(SimTime, FromSecRoundTrip) {
  for (const double sec : {0.1, 0.3, 0.7, 1.0, 2.0, 2.9, 10.42}) {
    EXPECT_DOUBLE_EQ(SimTime::from_sec(SimTime::from_sec(sec).sec()).sec(),
                     SimTime::from_sec(sec).sec());
  }
}

TEST(TransmissionDelay, PaperParameters) {
  // 20 bytes at 250 kbit/s = 160 bits / 250000 bps = 640 µs.
  EXPECT_EQ(transmission_delay(160, 250'000).us(), 640.0);
}

TEST(TransmissionDelay, RoundsUp) {
  // 1 bit at 3 bps = 333,333,333.3 ns -> rounds up to ...334.
  EXPECT_EQ(transmission_delay(1, 3).ns(), 333'333'334);
}

TEST(CyclesToTime, PaperClockRate) {
  // 24 million cycles at 24 MHz = exactly one second.
  EXPECT_EQ(cycles_to_time(24'000'000, 24'000'000).sec(), 1.0);
  // 250,000 cycles (one secure-clock tick) ≈ 10.42 ms.
  EXPECT_NEAR(cycles_to_time(250'000, 24'000'000).ms(), 10.4167, 0.001);
}

TEST(CyclesToTime, LargeValuesNoOverflow) {
  // 10^12 cycles at 1 Hz would overflow 64-bit ns intermediate without
  // the 128-bit path: 10^12 s = 10^21 ns > 2^63.
  const Duration d = cycles_to_time(1'000'000'000'000ULL, 1'000'000ULL);
  EXPECT_EQ(d.sec(), 1'000'000.0);
}

}  // namespace
}  // namespace cra::sim
