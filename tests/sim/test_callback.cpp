// InlineCallback: the scheduler's small-buffer-optimized event slot.
// Covers both storage paths (inline and heap fallback), single-owner
// move semantics, destruction exactly-once, and that the scheduler's
// dispatch order is unchanged by the std::function replacement.
#include "sim/callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sap/swarm.hpp"
#include "sim/scheduler.hpp"

namespace cra::sim {
namespace {

TEST(InlineCallback, EmptyIsFalse) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
}

TEST(InlineCallback, SmallCaptureStaysInline) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MessageSizedCaptureStaysInline) {
  // The hot-path shape: a pointer plus a ~40-byte payload struct.
  struct FakeMessage {
    std::uint32_t src, dst, kind;
    std::array<std::uint8_t, 32> body;
  };
  int value = 0;
  FakeMessage m{1, 2, 3, {}};
  auto lam = [m, &value]() mutable { value = static_cast<int>(m.src); };
  static_assert(InlineCallback::fits_inline<decltype(lam)>());
  InlineCallback cb(std::move(lam));
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(value, 1);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint8_t, 200> big{};
  big[7] = 42;
  int got = 0;
  auto lam = [big, &got] { got = big[7]; };
  static_assert(!InlineCallback::fits_inline<decltype(lam)>());
  InlineCallback cb(lam);
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(got, 42);
}

TEST(InlineCallback, ThrowingMoveFallsBackToHeap) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  static_assert(!InlineCallback::fits_inline<ThrowingMove>());
  InlineCallback cb(ThrowingMove{});
  EXPECT_FALSE(cb.is_inline());
  cb();
}

TEST(InlineCallback, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineCallback a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);   // exactly one live copy of the capture
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InlineCallback, MoveAssignDestroysPrevious) {
  auto first = std::make_shared<int>(0);
  auto second = std::make_shared<int>(0);
  InlineCallback cb([first] { ++*first; });
  cb = InlineCallback([second] { ++*second; });
  EXPECT_EQ(first.use_count(), 1);  // the replaced capture was destroyed
  cb();
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(*first, 0);
}

TEST(InlineCallback, DestructionReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InlineCallback cb([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, HeapCaptureMoveAndDestroy) {
  std::array<std::uint8_t, 128> big{};
  auto counter = std::make_shared<int>(0);
  {
    InlineCallback a([big, counter] { *counter += big.size(); });
    EXPECT_FALSE(a.is_inline());
    InlineCallback b(std::move(a));
    b();
  }
  EXPECT_EQ(*counter, 128);
  EXPECT_EQ(counter.use_count(), 1);
}

// The SBO swap must not perturb dispatch: events still run in
// (time, insertion) order, mixing inline and heap-stored callbacks.
TEST(InlineCallback, SchedulerOrderUnchangedAcrossStoragePaths) {
  Scheduler sched;
  std::vector<std::string> order;
  std::array<std::uint8_t, 100> big{};  // forces the heap path
  sched.schedule_at(SimTime::from_ns(20), [&order] { order.push_back("c"); });
  sched.schedule_at(SimTime::from_ns(10),
                    [&order, big] { order.push_back("a" + std::to_string(big[0])); });
  sched.schedule_at(SimTime::from_ns(10), [&order] { order.push_back("b"); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b", "c"}));
}

// Full-protocol determinism with the SBO callbacks and the payload pool
// on the hot path: the round digest must be byte-identical across
// thread counts (same harness shape as test_parallel's digest tests),
// and the classic engine must actually be recycling buffers.
TEST(InlineCallback, SapRoundDigestStableWithPooledPayloads) {
  auto run = [](std::uint32_t threads, std::uint64_t* pool_hits) {
    sap::SapConfig cfg;
    cfg.sim.threads = threads;
    auto sim = sap::SapSimulation::balanced(cfg, 2'000, /*seed=*/42);
    const auto r = sim.run_round();
    if (pool_hits != nullptr) *pool_hits = sim.network().payload_pool_hits();
    std::ostringstream os;
    os << r.verified << '|' << r.t_resp.ns() << '|' << r.u_ca_bytes << '|'
       << r.messages << '|' << r.responded << '|' << r.repolls;
    return os.str();
  };
  std::uint64_t classic_hits = 0;
  const std::string serial = run(1, &classic_hits);
  EXPECT_GT(classic_hits, 0u);  // the freelist is live on the classic path
  EXPECT_EQ(run(2, nullptr), serial);
  EXPECT_EQ(run(8, nullptr), serial);
}

}  // namespace
}  // namespace cra::sim
