// TrafficShaper: FaultPlan loss/partition windows replayed against
// wall-clock offsets, plus the baseline loss/reorder draws.
#include "fault/shaper.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace cra::fault {
namespace {

using sim::SimTime;
using Fate = TrafficShaper::Fate;

constexpr std::uint64_t kMs = 1'000'000;

TEST(TrafficShaper, DefaultConfigDeliversEverything) {
  TrafficShaper shaper{ShaperConfig{}};
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(shaper.decide(t * kMs, 42).fate, Fate::kDeliver);
  }
  EXPECT_EQ(shaper.decisions(), 1000u);
  EXPECT_EQ(shaper.dropped(), 0u);
  EXPECT_EQ(shaper.delayed(), 0u);
}

TEST(TrafficShaper, CertainLossDropsEverything) {
  ShaperConfig cfg;
  cfg.baseline_loss = 1.0;
  TrafficShaper shaper{cfg};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(shaper.decide(0, 1).fate, Fate::kDrop);
  }
  EXPECT_EQ(shaper.dropped(), 100u);
}

TEST(TrafficShaper, SameSeedSameVerdictSequence) {
  ShaperConfig cfg;
  cfg.baseline_loss = 0.3;
  cfg.reorder = 0.2;
  TrafficShaper a{cfg};
  TrafficShaper b{cfg};
  for (int i = 0; i < 2000; ++i) {
    const auto va = a.decide(static_cast<std::uint64_t>(i) * kMs, 7);
    const auto vb = b.decide(static_cast<std::uint64_t>(i) * kMs, 7);
    ASSERT_EQ(va.fate, vb.fate) << "diverged at call " << i;
    ASSERT_EQ(va.delay_ns, vb.delay_ns);
  }

  cfg.seed = 0xd1ffe4ull;
  TrafficShaper c{cfg};
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    if (c.decide(static_cast<std::uint64_t>(i) * kMs, 7).fate !=
        a.decide(static_cast<std::uint64_t>(i) * kMs, 7).fate) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0) << "a different seed never changed a verdict";
}

TEST(TrafficShaper, BaselineLossRateIsRoughlyHonoured) {
  ShaperConfig cfg;
  cfg.baseline_loss = 0.25;
  TrafficShaper shaper{cfg};
  const int kN = 20'000;
  for (int i = 0; i < kN; ++i) (void)shaper.decide(0, 1);
  const double rate =
      static_cast<double>(shaper.dropped()) / static_cast<double>(kN);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(TrafficShaper, PlanLossSpikeWindowOverridesBaseline) {
  ShaperConfig cfg;
  cfg.baseline_loss = 0.05;
  FaultPlan plan;
  plan.loss_spike(SimTime::from_ms(100), 1.0);
  plan.loss_clear(SimTime::from_ms(200));
  TrafficShaper shaper{cfg, &plan};

  EXPECT_DOUBLE_EQ(shaper.loss_at(0), 0.05);
  EXPECT_DOUBLE_EQ(shaper.loss_at(99 * kMs), 0.05);
  EXPECT_DOUBLE_EQ(shaper.loss_at(100 * kMs), 1.0);
  EXPECT_DOUBLE_EQ(shaper.loss_at(199 * kMs), 1.0);
  // loss_clear returns to the shaper's own baseline, not zero.
  EXPECT_DOUBLE_EQ(shaper.loss_at(200 * kMs), 0.05);

  // Inside the total-loss window every datagram is shed.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(shaper.decide(150 * kMs, 9).fate, Fate::kDrop);
  }
}

TEST(TrafficShaper, PartitionDropsOnlyIslandMembers) {
  FaultPlan plan;
  plan.partition(SimTime::from_ms(50), {3, 4, 5});
  plan.heal(SimTime::from_ms(150), {3, 4, 5});
  TrafficShaper shaper{ShaperConfig{}, &plan};

  EXPECT_FALSE(shaper.partitioned_at(0, 4));
  EXPECT_TRUE(shaper.partitioned_at(100 * kMs, 4));
  EXPECT_FALSE(shaper.partitioned_at(100 * kMs, 6));  // outside the island
  EXPECT_FALSE(shaper.partitioned_at(150 * kMs, 4));  // healed

  EXPECT_EQ(shaper.decide(100 * kMs, 4).fate, Fate::kDrop);
  EXPECT_EQ(shaper.decide(100 * kMs, 6).fate, Fate::kDeliver);
  EXPECT_EQ(shaper.decide(160 * kMs, 4).fate, Fate::kDeliver);
}

TEST(TrafficShaper, UnhealedPartitionLastsForever) {
  FaultPlan plan;
  plan.partition(SimTime::from_ms(10), {1});
  TrafficShaper shaper{ShaperConfig{}, &plan};
  EXPECT_TRUE(shaper.partitioned_at(10 * kMs, 1));
  EXPECT_TRUE(shaper.partitioned_at(1'000'000 * kMs, 1));
}

TEST(TrafficShaper, ReorderDelaysWithConfiguredHold) {
  ShaperConfig cfg;
  cfg.reorder = 1.0;
  cfg.reorder_delay_ns = 5 * kMs;
  TrafficShaper shaper{cfg};
  const auto v = shaper.decide(0, 1);
  EXPECT_EQ(v.fate, Fate::kDelay);
  EXPECT_EQ(v.delay_ns, 5 * kMs);
  EXPECT_EQ(shaper.delayed(), 1u);
}

TEST(TrafficShaper, DeviceAndLinkFaultsAreIgnoredByThePipe) {
  // Endpoint faults (crash/sleep/link) must not shape datagrams.
  FaultPlan plan;
  plan.crash(SimTime::from_ms(10), 7);
  plan.link_down(SimTime::from_ms(10), 1, 2);
  TrafficShaper shaper{ShaperConfig{}, &plan};
  EXPECT_EQ(shaper.decide(50 * kMs, 7).fate, Fate::kDeliver);
  EXPECT_DOUBLE_EQ(shaper.loss_at(50 * kMs), 0.0);
}

}  // namespace
}  // namespace cra::fault
