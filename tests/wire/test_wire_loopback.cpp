// End-to-end loopback integration: a VerifierDaemon and AgentRunners on
// real UDP sockets, in-process. These are the wire stack's contract
// tests — registration, full rounds, bad-device classification, binary
// aggregation, and loss recovery through the adaptive re-poll ladder.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wire/agent.hpp"
#include "wire/daemon.hpp"

namespace cra::wire {
namespace {

struct Swarm {
  std::unique_ptr<VerifierDaemon> daemon;
  std::vector<std::unique_ptr<AgentRunner>> runners;
  std::vector<std::thread> threads;

  /// Run to completion: agents in threads, daemon on this one.
  void run() {
    for (auto& r : runners) {
      threads.emplace_back([&r] { r->run(); });
    }
    daemon->run();
    for (auto& r : runners) r->stop();  // in case a kBye was lost
    for (auto& t : threads) t.join();
  }
};

Swarm make_swarm(DaemonConfig dcfg, std::uint32_t agent_count,
                 std::uint32_t bad, double loss) {
  const Bytes master = to_bytes("loopback-test-master");
  dcfg.port = 0;
  dcfg.master = master;
  Swarm s;
  const std::uint32_t devices = dcfg.devices;
  const crypto::HashAlg alg = dcfg.alg;
  const std::size_t content_size = dcfg.content_size;
  s.daemon = std::make_unique<VerifierDaemon>(std::move(dcfg));
  std::uint32_t next_id = 1;
  for (std::uint32_t a = 0; a < agent_count; ++a) {
    const std::uint32_t share =
        devices / agent_count + (a < devices % agent_count ? 1 : 0);
    if (share == 0) continue;
    AgentRunnerConfig acfg;
    acfg.daemon = Endpoint::loopback(s.daemon->local_port());
    acfg.agent.first_id = next_id;
    acfg.agent.count = share;
    acfg.agent.master = master;
    acfg.agent.alg = alg;
    acfg.agent.content_size = content_size;
    acfg.agent.bad = a == 0 ? bad : 0;
    acfg.shaper.baseline_loss = loss;
    acfg.shaper.seed = 0x100bull + a;
    s.runners.push_back(std::make_unique<AgentRunner>(std::move(acfg)));
    next_id += share;
  }
  return s;
}

std::uint64_t counter(const Swarm& s, const char* name) {
  return s.daemon->metrics().counter_value(name);
}

TEST(WireLoopback, AllHealthyIdentifyRounds) {
  DaemonConfig dcfg;
  dcfg.devices = 512;
  dcfg.rounds = 3;
  dcfg.period_ms = 25;
  Swarm s = make_swarm(std::move(dcfg), 1, 0, 0.0);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 3u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_received"), 3u * 512u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_missing"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_healthy"), 3u * 512u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_untrusted"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_unreachable"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_verified"), 3u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_failed"), 0u);
}

TEST(WireLoopback, BadDevicesClassifiedUntrustedEveryRound) {
  DaemonConfig dcfg;
  dcfg.devices = 256;
  dcfg.rounds = 3;
  dcfg.period_ms = 25;
  Swarm s = make_swarm(std::move(dcfg), 1, /*bad=*/5, 0.0);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 3u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_untrusted"), 3u * 5u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_healthy"), 3u * 251u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_verified"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_failed"), 3u);
}

TEST(WireLoopback, MultipleAgentsCoverTheIdSpace) {
  DaemonConfig dcfg;
  dcfg.devices = 300;  // 100 each across 3 agents
  dcfg.rounds = 2;
  dcfg.period_ms = 25;
  Swarm s = make_swarm(std::move(dcfg), 3, 0, 0.0);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 2u);
  EXPECT_EQ(counter(s, "wire.daemon.agents_registered"), 3u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_received"), 2u * 300u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_missing"), 0u);
}

TEST(WireLoopback, BinaryModeVerifiesHealthySwarm) {
  DaemonConfig dcfg;
  dcfg.devices = 128;
  dcfg.rounds = 2;
  dcfg.period_ms = 25;
  dcfg.mode = sap::QoaMode::kBinary;
  Swarm s = make_swarm(std::move(dcfg), 1, 0, 0.0);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 2u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_verified"), 2u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_failed"), 0u);
}

TEST(WireLoopback, BinaryModeFailsWithOneBadDevice) {
  DaemonConfig dcfg;
  dcfg.devices = 128;
  dcfg.rounds = 2;
  dcfg.period_ms = 25;
  dcfg.mode = sap::QoaMode::kBinary;
  Swarm s = make_swarm(std::move(dcfg), 1, /*bad=*/1, 0.0);
  s.run();

  EXPECT_EQ(counter(s, "wire.daemon.rounds_verified"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.rounds_failed"), 2u);
}

TEST(WireLoopback, Sha256BackendEndToEnd) {
  DaemonConfig dcfg;
  dcfg.devices = 128;
  dcfg.rounds = 2;
  dcfg.period_ms = 25;
  dcfg.alg = crypto::HashAlg::kSha256;
  Swarm s = make_swarm(std::move(dcfg), 1, /*bad=*/2, 0.0);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 2u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_untrusted"), 2u * 2u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_missing"), 0u);
}

TEST(WireLoopback, RepollLadderRecoversShapedLoss) {
  // 10% uplink loss on kTokens frames: the adaptive ladder's
  // want-range re-polls must recover every token within the round
  // budget (25 ms x 2 up to 200 ms = 375 ms; period 100 ms keeps
  // rounds overlapping-free at this size).
  DaemonConfig dcfg;
  dcfg.devices = 512;
  dcfg.rounds = 4;
  dcfg.period_ms = 100;
  Swarm s = make_swarm(std::move(dcfg), 1, /*bad=*/3, /*loss=*/0.10);
  s.run();

  EXPECT_EQ(s.daemon->rounds_completed(), 4u);
  EXPECT_EQ(counter(s, "wire.daemon.tokens_missing"), 0u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_untrusted"), 4u * 3u);
  EXPECT_EQ(counter(s, "wire.daemon.devices_unreachable"), 0u);
  // The shaper must actually have bitten for this test to mean
  // anything — and every drop implies at least one re-poll.
  const auto& am = s.runners[0]->metrics();
  if (am.counter_value("wire.agent.shaped_drops") > 0) {
    EXPECT_GT(counter(s, "wire.daemon.repolls"), 0u);
  }
}

TEST(WireLoopback, AgentCoreCachesTokensAcrossRepolls) {
  AgentConfig cfg;
  cfg.first_id = 1;
  cfg.count = 100;
  cfg.master = to_bytes("core-cache-master");
  AgentCore core(cfg);
  (void)core.token_payloads(7, {});
  EXPECT_EQ(core.tokens_computed(), 100u);
  // A want-range re-poll for the same tick re-packs, not re-hashes.
  (void)core.token_payloads(7, {{10, 5}});
  EXPECT_EQ(core.tokens_computed(), 100u);
  // A new tick invalidates the cache.
  (void)core.token_payloads(8, {});
  EXPECT_EQ(core.tokens_computed(), 200u);
}

}  // namespace
}  // namespace cra::wire
