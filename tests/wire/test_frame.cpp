// Frame codec: roundtrips, malformed-datagram rejection, and the
// hello / want-range payload helpers.
#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cra::wire {
namespace {

Bytes some_payload(std::size_t n) {
  Rng rng(0xf7a3e);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return out;
}

TEST(Frame, RoundtripsEveryKindWithPayload) {
  const Bytes payload = some_payload(200);
  for (const FrameKind kind :
       {FrameKind::kHello, FrameKind::kHelloAck, FrameKind::kChal,
        FrameKind::kTokens, FrameKind::kBye}) {
    FrameHeader h;
    h.kind = kind;
    h.sender = 0x01020304;
    h.tick = 42;
    h.seq = 0xdeadbeef;
    const Bytes wire = encode_frame(h, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

    const auto frame = decode_frame(wire);
    ASSERT_TRUE(frame.has_value()) << frame_kind_name(kind);
    EXPECT_EQ(frame->header.kind, kind);
    EXPECT_EQ(frame->header.sender, 0x01020304u);
    EXPECT_EQ(frame->header.tick, 42u);
    EXPECT_EQ(frame->header.seq, 0xdeadbeefu);
    EXPECT_EQ(Bytes(frame->payload.begin(), frame->payload.end()), payload);
  }
}

TEST(Frame, RoundtripsEmptyPayload) {
  FrameHeader h;
  h.kind = FrameKind::kBye;
  const Bytes wire = encode_frame(h, {});
  const auto frame = decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Frame, EncodeIntoMatchesAllocatingEncode) {
  const Bytes payload = some_payload(33);
  FrameHeader h;
  h.kind = FrameKind::kTokens;
  h.sender = 7;
  h.tick = 9;
  h.seq = 11;
  const Bytes wire = encode_frame(h, payload);
  std::uint8_t buf[kMaxDatagram];
  const std::size_t n = encode_frame_into(h, payload, buf);
  ASSERT_EQ(n, wire.size());
  EXPECT_EQ(Bytes(buf, buf + n), wire);
}

TEST(Frame, RejectsOversizedPayload) {
  FrameHeader h;
  EXPECT_NO_THROW(encode_frame(h, some_payload(kMaxPayload)));
  EXPECT_THROW(encode_frame(h, some_payload(kMaxPayload + 1)),
               std::length_error);
}

TEST(Frame, RejectsTruncatedDatagrams) {
  FrameHeader h;
  h.kind = FrameKind::kChal;
  const Bytes wire = encode_frame(h, some_payload(40));
  // Every prefix strictly shorter than the frame must be rejected —
  // including prefixes that still contain the whole header.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_frame(BytesView(wire.data(), len)).has_value())
        << "accepted a " << len << "-byte prefix";
  }
}

TEST(Frame, RejectsBadMagicVersionKindAndLength) {
  FrameHeader h;
  h.kind = FrameKind::kHello;
  const Bytes good = encode_frame(h, some_payload(8));
  ASSERT_TRUE(decode_frame(good).has_value());

  Bytes bad = good;
  bad[0] ^= 0xff;  // magic
  EXPECT_FALSE(decode_frame(bad).has_value());

  bad = good;
  bad[4] = kFrameVersion + 1;  // version
  EXPECT_FALSE(decode_frame(bad).has_value());

  bad = good;
  bad[5] = 0;  // kind below range
  EXPECT_FALSE(decode_frame(bad).has_value());
  bad[5] = 200;  // kind above range
  EXPECT_FALSE(decode_frame(bad).has_value());

  bad = good;
  bad[kFrameHeaderSize - 2] ^= 0x01;  // payload_len vs datagram size
  EXPECT_FALSE(decode_frame(bad).has_value());

  // Trailing garbage after the declared payload is also a disagreement.
  bad = good;
  bad.push_back(0xab);
  EXPECT_FALSE(decode_frame(bad).has_value());
}

TEST(Frame, HelloRoundtripAndRejection) {
  const HelloPayload hello{4097, 25'000};
  const Bytes payload = encode_hello(hello);
  const auto back = decode_hello(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->first_id, 4097u);
  EXPECT_EQ(back->count, 25'000u);

  EXPECT_FALSE(decode_hello(BytesView(payload.data(), 7)).has_value());
  Bytes longer = payload;
  longer.push_back(0);
  EXPECT_FALSE(decode_hello(longer).has_value());
}

TEST(Frame, WantRangesAbsentMeansPollEverything) {
  const Bytes chal = some_payload(20);
  const auto want = decode_want_ranges(chal, chal.size());
  ASSERT_TRUE(want.has_value());
  EXPECT_TRUE(want->empty());
}

TEST(Frame, WantRangesRoundtrip) {
  Bytes payload = some_payload(20);
  append_want_ranges(payload, {{1, 100}, {512, 3}, {90'000, 1}});
  const auto want = decode_want_ranges(payload, 20);
  ASSERT_TRUE(want.has_value());
  ASSERT_EQ(want->size(), 3u);
  EXPECT_EQ((*want)[0].start, 1u);
  EXPECT_EQ((*want)[0].count, 100u);
  EXPECT_EQ((*want)[1].start, 512u);
  EXPECT_EQ((*want)[1].count, 3u);
  EXPECT_EQ((*want)[2].start, 90'000u);
  EXPECT_EQ((*want)[2].count, 1u);
}

TEST(Frame, WantRangesRejectsMalformedTrailers) {
  Bytes payload = some_payload(20);
  append_want_ranges(payload, {{5, 10}});

  // Trailer length not a multiple of 8.
  Bytes ragged = payload;
  ragged.push_back(0);
  EXPECT_FALSE(decode_want_ranges(ragged, 20).has_value());

  // A zero-count range is meaningless — reject rather than ignore.
  Bytes zero = some_payload(20);
  append_want_ranges(zero, {{5, 0}});
  EXPECT_FALSE(decode_want_ranges(zero, 20).has_value());

  // Payload shorter than the chal itself.
  EXPECT_FALSE(decode_want_ranges(BytesView(payload.data(), 10), 20)
                   .has_value());
}

TEST(Frame, DeviceContentIsDeterministicAndDistinct) {
  const Bytes master = to_bytes("wire-test-master");
  const Bytes a1 = device_content(master, 7, 64);
  const Bytes a2 = device_content(master, 7, 64);
  const Bytes b = device_content(master, 8, 64);
  EXPECT_EQ(a1.size(), 64u);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(device_content(to_bytes("other-master"), 7, 64), a1);
}

}  // namespace
}  // namespace cra::wire
