// Restart recovery for the wire daemons: journaled state adoption,
// resumed rounds with live agents, epoch-aware re-hello healing,
// graceful SIGTERM drain, and the pinned seq-wraparound regression.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "wire/agent.hpp"
#include "wire/daemon.hpp"
#include "wire/journal.hpp"

namespace cra::wire {
namespace {

// --- SeqTracker: pinned regression for 32-bit seq wraparound ---

TEST(SeqTracker, WraparoundIsAdvanceNotReorder) {
  SeqTracker t;
  EXPECT_EQ(t.observe(0xFFFFFFFEu), SeqTracker::Verdict::kFirst);
  EXPECT_EQ(t.observe(0xFFFFFFFFu), SeqTracker::Verdict::kAdvance);
  // The wrap: seq 0 follows 0xFFFFFFFF. The old `seq < last` comparison
  // misattributed this as a reorder; serial-number arithmetic does not.
  EXPECT_EQ(t.observe(0u), SeqTracker::Verdict::kAdvance);
  EXPECT_EQ(t.observe(0u), SeqTracker::Verdict::kDuplicate);
  // Genuinely late pre-wrap datagram: still a reorder.
  EXPECT_EQ(t.observe(0xFFFFFFFEu), SeqTracker::Verdict::kReorder);
  EXPECT_EQ(t.observe(5u), SeqTracker::Verdict::kAdvance);
}

TEST(SeqTracker, ResetForgetsTheSession) {
  SeqTracker t;
  EXPECT_EQ(t.observe(1000u), SeqTracker::Verdict::kFirst);
  EXPECT_EQ(t.observe(1u), SeqTracker::Verdict::kReorder);
  t.reset();
  // A restarted agent's low sequence numbers are a fresh session, not
  // a flood of reorders.
  EXPECT_EQ(t.observe(1u), SeqTracker::Verdict::kFirst);
  EXPECT_EQ(t.observe(2u), SeqTracker::Verdict::kAdvance);
}

// --- Hello epoch wire compatibility ---

TEST(HelloEpoch, EncodesEpochAndAcceptsLegacyFrames) {
  HelloPayload hello;
  hello.first_id = 17;
  hello.count = 1200;
  hello.epoch = 0x1122334455667788ull;
  const Bytes wire = encode_hello(hello);
  ASSERT_EQ(wire.size(), 16u);
  const auto back = decode_hello(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->first_id, 17u);
  EXPECT_EQ(back->count, 1200u);
  EXPECT_EQ(back->epoch, 0x1122334455667788ull);

  // Pre-epoch agents sent 8 bytes; they decode with epoch 0.
  const auto legacy = decode_hello(BytesView(wire.data(), 8));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->first_id, 17u);
  EXPECT_EQ(legacy->count, 1200u);
  EXPECT_EQ(legacy->epoch, 0u);

  EXPECT_FALSE(decode_hello(BytesView(wire.data(), 7)).has_value());
  EXPECT_FALSE(decode_hello(BytesView(wire.data(), 12)).has_value());
}

// --- Daemon restart recovery ---

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/cra_recovery_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (const char* f : {"/state.wal", "/state.snap", "/state.snap.tmp",
                          "/epoch", "/metrics.json", "/metrics.json.tmp"}) {
      ::unlink((dir_ + f).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string journal() const { return dir_ + "/state"; }

  std::string dir_;
};

constexpr std::uint32_t kDevices = 64;
const char* const kMaster = "recovery-test-master";

DaemonConfig daemon_config(const std::string& journal,
                           std::uint32_t rounds) {
  DaemonConfig cfg;
  cfg.port = 0;
  cfg.devices = kDevices;
  cfg.master = to_bytes(kMaster);
  cfg.rounds = rounds;
  cfg.period_ms = 10;
  cfg.journal_path = journal;
  cfg.snapshot_every = 2;
  return cfg;
}

std::unique_ptr<AgentRunner> make_agent(std::uint16_t port) {
  AgentRunnerConfig acfg;
  acfg.daemon = Endpoint::loopback(port);
  acfg.agent.first_id = 1;
  acfg.agent.count = kDevices;
  acfg.agent.master = to_bytes(kMaster);
  return std::make_unique<AgentRunner>(std::move(acfg));
}

/// Run `daemon` to completion with one fresh agent covering the swarm.
void run_with_agent(VerifierDaemon& daemon) {
  auto agent = make_agent(daemon.local_port());
  std::thread t([&] { agent->run(); });
  daemon.run();
  agent->stop();
  t.join();
}

TEST_F(RecoveryTest, RestartAdoptsJournaledStateAndContinues) {
  {
    VerifierDaemon first(daemon_config(journal(), 2));
    EXPECT_FALSE(first.recovered());  // nothing journaled yet
    run_with_agent(first);
    EXPECT_EQ(first.rounds_completed(), 2u);
  }
  // Same journal, higher round target: the restart adopts rounds_done=2
  // and the registration table, then runs rounds 3 and 4. The original
  // agent is gone — a fresh one re-hellos with a new epoch and heals
  // the journaled (stale-port) entry.
  VerifierDaemon second(daemon_config(journal(), 4));
  EXPECT_TRUE(second.recovered());
  EXPECT_EQ(second.rounds_completed(), 2u);
  run_with_agent(second);
  EXPECT_EQ(second.rounds_completed(), 4u);
  EXPECT_EQ(second.metrics().counter_value("wire.daemon.recoveries"), 1u);
  EXPECT_EQ(second.metrics().counter_value("wire.daemon.agent_restarts"),
            1u);
  EXPECT_EQ(second.metrics().counter_value("wire.daemon.devices_untrusted"),
            0u);
  // Reconvergence stamped: the first full-coverage round after restart
  // (a set wire.recovery_rounds is always >= 1 — it counts the resumed
  // round itself; unset gauges read 0).
  EXPECT_GE(second.metrics().gauge_value("wire.recovery_rounds"), 1);
  EXPECT_GE(second.metrics().gauge_value("wire.recovery_ms"), 0);
}

TEST_F(RecoveryTest, RestartAtRoundLimitExitsWithoutAnExtraRound) {
  {
    VerifierDaemon first(daemon_config(journal(), 2));
    run_with_agent(first);
    EXPECT_EQ(first.rounds_completed(), 2u);
  }
  // Same round target as the journaled rounds_done: the previous
  // incarnation already finished, so run() must return immediately
  // instead of starting round 3 with nobody listening.
  VerifierDaemon second(daemon_config(journal(), 2));
  EXPECT_TRUE(second.recovered());
  EXPECT_EQ(second.rounds_completed(), 2u);
  second.run();
  EXPECT_EQ(second.rounds_completed(), 2u);
  EXPECT_EQ(second.metrics().counter_value("wire.daemon.rounds_completed"),
            0u);
}

TEST_F(RecoveryTest, MidRoundJournalResumesSameRoundWithLiveAgents) {
  // Hand-craft the journal of a verifier killed mid-round 1: agent
  // registered (at a dead port), round started, re-poll armed, no
  // reports yet.
  {
    Journal j = Journal::open(journal() + ".wal", {});
    VerifierState::Agent a;
    a.first_id = 1;
    a.count = kDevices;
    a.epoch = 7;
    a.ip = 0x0100007Fu;        // 127.0.0.1
    a.port = 0xFFFF;           // nobody listens here anymore
    j.append(VerifierState::kAgentRecord, VerifierState::encode_agent(a));
    j.append(VerifierState::kRoundStart,
             VerifierState::encode_round_start(1));
    j.append(VerifierState::kRepoll, VerifierState::encode_repoll(1, 1));
    j.sync();
  }
  VerifierDaemon daemon(daemon_config(journal(), 2));
  ASSERT_TRUE(daemon.recovered());
  EXPECT_EQ(daemon.rounds_completed(), 0u);  // round 1 still in flight

  // The resumed round's chal goes to the stale port and dies; the live
  // agent re-hellos, heals the entry, and the re-poll ladder completes
  // the SAME round — then round 2 runs normally.
  run_with_agent(daemon);
  EXPECT_EQ(daemon.rounds_completed(), 2u);
  EXPECT_EQ(daemon.metrics().counter_value("wire.daemon.rounds_resumed"),
            1u);
  EXPECT_EQ(daemon.metrics().counter_value("wire.daemon.rounds_started"),
            1u);
  EXPECT_EQ(daemon.metrics().counter_value("wire.daemon.devices_untrusted"),
            0u);
}

TEST_F(RecoveryTest, RecoveredDigestMatchesIndependentReplay) {
  {
    VerifierDaemon first(daemon_config(journal(), 3));
    run_with_agent(first);
  }
  // Replay the files exactly like recover_from_journal does; the
  // restarted daemon must report the identical digest.
  const std::size_t token_size = crypto::digest_size(crypto::HashAlg::kSha1);
  VerifierState st;
  st.devices = kDevices;
  if (const auto snap = read_snapshot_file(journal() + ".snap")) {
    auto decoded = VerifierState::decode(*snap, token_size);
    ASSERT_TRUE(decoded.has_value());
    st = std::move(*decoded);
  }
  {
    Journal j = Journal::open(journal() + ".wal",
                              [&](std::uint8_t kind, BytesView payload) {
                                st.apply(kind, payload, token_size);
                              });
  }
  const auto expected = static_cast<std::int64_t>(
      st.digest64(token_size) & 0x7fffffffffffffffull);

  VerifierDaemon second(daemon_config(journal(), 3));
  ASSERT_TRUE(second.recovered());
  EXPECT_EQ(second.metrics().gauge_value("wire.daemon.recovered_digest_lo"),
            expected);
}

TEST_F(RecoveryTest, GracefulShutdownWritesFinalSnapshotAndMetrics) {
  DaemonConfig cfg = daemon_config(journal(), 0);  // run forever
  cfg.metrics_path = dir_ + "/metrics.json";
  VerifierDaemon daemon(std::move(cfg));
  auto agent = make_agent(daemon.local_port());
  std::thread at([&] { agent->run(); });
  std::thread dt([&] { daemon.run(); });
  // Let a couple of rounds land, then ask for the SIGTERM path.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  VerifierDaemon::request_shutdown();
  dt.join();
  agent->stop();
  at.join();

  EXPECT_GE(daemon.rounds_completed(), 1u);
  EXPECT_EQ(
      daemon.metrics().counter_value("wire.daemon.graceful_shutdowns"), 1u);
  // The drain leaves no round in flight and the journal compacted: a
  // restart adopts a closed-round state.
  VerifierDaemon restarted(daemon_config(journal(), 0));
  EXPECT_TRUE(restarted.recovered());
  EXPECT_EQ(restarted.rounds_completed(), daemon.rounds_completed());
  // And the metrics JSON export happened.
  EXPECT_EQ(::access((dir_ + "/metrics.json").c_str(), R_OK), 0);
}

TEST_F(RecoveryTest, AgentEpochPersistsAndBumps) {
  AgentRunnerConfig acfg;
  acfg.daemon = Endpoint::loopback(1);  // never contacted
  acfg.agent.first_id = 1;
  acfg.agent.count = 4;
  acfg.agent.master = to_bytes(kMaster);
  acfg.journal_path = dir_ + "/epoch";
  const AgentRunner a1(acfg);
  const AgentRunner a2(acfg);
  EXPECT_EQ(a1.epoch(), 1u);
  EXPECT_EQ(a2.epoch(), 2u);

  // Without a journal the epoch is clock-derived: unique, nonzero.
  acfg.journal_path.clear();
  const AgentRunner a3(acfg);
  EXPECT_NE(a3.epoch(), 0u);
}

}  // namespace
}  // namespace cra::wire
