// EventLoop against real fds: pipe IO dispatch, timers on the
// monotonic clock, the wakeup hook, and cross-thread stop().
#include "wire/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <thread>

namespace cra::wire {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int reader() const { return fds[0]; }
  int writer() const { return fds[1]; }
};

TEST(EventLoop, DispatchesReadableFd) {
  EventLoop loop;
  Pipe pipe;
  std::string got;
  loop.add_fd(pipe.reader(), EPOLLIN, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    char buf[16];
    const ssize_t n = ::read(pipe.reader(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    got.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  ASSERT_EQ(::write(pipe.writer(), "ping", 4), 4);
  loop.run();
  EXPECT_EQ(got, "ping");
}

TEST(EventLoop, TimerFiresAfterDelay) {
  EventLoop loop;
  const std::uint64_t t0 = monotonic_ns();
  std::uint64_t fired_at = 0;
  loop.schedule_after(5'000'000, [&] {  // 5 ms
    fired_at = monotonic_ns();
    loop.stop();
  });
  loop.run();
  ASSERT_NE(fired_at, 0u);
  // Never early; the wheel's 1 ms granularity plus scheduling jitter
  // bounds lateness loosely.
  EXPECT_GE(fired_at - t0, 4'000'000u);
  EXPECT_LT(fired_at - t0, 500'000'000u);
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool cancelled_fired = false;
  const auto id = loop.schedule_after(1'000'000,
                                      [&] { cancelled_fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  loop.schedule_after(10'000'000, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoop, StopFromAnotherThreadWakesIdleLoop) {
  // No fds, no timers: the loop would sleep in epoll_wait forever
  // without the eventfd poke.
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // must return promptly after stop()
  stopper.join();
  EXPECT_FALSE(loop.running());
}

TEST(EventLoop, WakeupHookRunsBeforeDispatch) {
  EventLoop loop;
  Pipe pipe;
  std::vector<int> order;
  loop.set_wakeup_hook([&] {
    if (order.empty()) order.push_back(1);
  });
  loop.add_fd(pipe.reader(), EPOLLIN, [&](std::uint32_t) {
    char buf[8];
    (void)::read(pipe.reader(), buf, sizeof buf);
    order.push_back(2);
    loop.stop();
  });
  ASSERT_EQ(::write(pipe.writer(), "x", 1), 1);
  loop.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // hook saw the iteration before the IO
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoop, RemoveFdStopsDispatch) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add_fd(pipe.reader(), EPOLLIN, [&](std::uint32_t) {
    ++calls;
    char buf[8];
    (void)::read(pipe.reader(), buf, sizeof buf);
    loop.remove_fd(pipe.reader());
    // New data on the removed fd must not dispatch; a timer ends the
    // test instead.
    ASSERT_EQ(::write(pipe.writer(), "y", 1), 1);
    loop.schedule_after(10'000'000, [&] { loop.stop(); });
  });
  ASSERT_EQ(::write(pipe.writer(), "x", 1), 1);
  loop.run();
  EXPECT_EQ(calls, 1);
}

TEST(EventLoop, NowNsIsMonotonicAcrossCallbacks) {
  EventLoop loop;
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  loop.schedule_after(1'000'000, [&] { first = loop.now_ns(); });
  loop.schedule_after(8'000'000, [&] {
    second = loop.now_ns();
    loop.stop();
  });
  loop.run();
  ASSERT_NE(first, 0u);
  EXPECT_GT(second, first);
}

}  // namespace
}  // namespace cra::wire
