// TimerWheel under a hand-rolled clock: the wheel is clock-agnostic, so
// every schedule/cancel/lap behaviour is testable with plain integers.
#include "wire/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cra::wire {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(10 * kMs, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(9 * kMs), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance(10 * kMs), 1u);
  EXPECT_EQ(fired, 1);
  // One-shot: advancing further never re-fires.
  EXPECT_EQ(wheel.advance(500 * kMs), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  (void)wheel.advance(50 * kMs);
  int fired = 0;
  wheel.schedule(1 * kMs, [&] { ++fired; });  // already in the past
  EXPECT_EQ(wheel.advance(50 * kMs), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule(5 * kMs, [&] { ++fired; });
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.cancel(id));  // second cancel: already gone
  EXPECT_EQ(wheel.advance(100 * kMs), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheel, CancelAfterFireReturnsFalse) {
  TimerWheel wheel;
  const auto id = wheel.schedule(2 * kMs, [] {});
  EXPECT_EQ(wheel.advance(2 * kMs), 1u);
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, CallbackMayRearmItself) {
  TimerWheel wheel;
  // The adaptive re-poll pattern: each firing schedules the next step.
  std::vector<std::uint64_t> fire_times;
  std::uint64_t next_delay = 25 * kMs;
  std::function<void()> rearm;
  std::uint64_t now = 0;
  rearm = [&] {
    fire_times.push_back(now);
    if (fire_times.size() < 4) {
      next_delay *= 2;
      wheel.schedule(now + next_delay, rearm);
    }
  };
  wheel.schedule(25 * kMs, rearm);
  for (now = 0; now <= 1000 * kMs; now += kMs) wheel.advance(now);
  ASSERT_EQ(fire_times.size(), 4u);
  EXPECT_EQ(fire_times[0], 25 * kMs);
  EXPECT_EQ(fire_times[1], 75 * kMs);   // +50
  EXPECT_EQ(fire_times[2], 175 * kMs);  // +100
  EXPECT_EQ(fire_times[3], 375 * kMs);  // +200
}

TEST(TimerWheel, DeadlineBeyondOneRevolutionWaitsItsLap) {
  // 256 slots x 1 ms granularity = 256 ms per revolution. A 300 ms
  // timer hashes into an early slot but must not fire on the first
  // pass over that slot (~44 ms in).
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(300 * kMs, [&] { ++fired; });
  for (std::uint64_t t = 0; t < 300; ++t) {
    wheel.advance(t * kMs);
    ASSERT_EQ(fired, 0) << "fired a lap early at t=" << t << "ms";
  }
  wheel.advance(300 * kMs);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), UINT64_MAX);
  wheel.schedule(40 * kMs, [] {});
  const auto early = wheel.schedule(10 * kMs, [] {});
  EXPECT_LE(wheel.next_deadline(), 10 * kMs);
  EXPECT_GT(wheel.next_deadline(), 0u);
  wheel.cancel(early);
  const std::uint64_t after = wheel.next_deadline();
  EXPECT_GT(after, 10 * kMs);
  EXPECT_LE(after, 40 * kMs);
  wheel.advance(40 * kMs);
  EXPECT_EQ(wheel.next_deadline(), UINT64_MAX);
}

TEST(TimerWheel, ManyTimersOneSlotFireTogether) {
  TimerWheel wheel;
  int fired = 0;
  // Same granule -> same slot; all due at once, insertion order kept
  // as a batch (no ordering promise within the granule, only the count).
  for (int i = 0; i < 1000; ++i) wheel.schedule(7 * kMs, [&] { ++fired; });
  EXPECT_EQ(wheel.pending(), 1000u);
  EXPECT_EQ(wheel.advance(7 * kMs), 1000u);
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, IdsAreNeverReusedOrZero) {
  TimerWheel wheel;
  std::vector<TimerWheel::TimerId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(wheel.schedule(kMs, [] {}));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], 0u);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
}

}  // namespace
}  // namespace cra::wire
