// Crash-safety contract tests for the wire journal: CRC framing,
// torn-tail replay, atomic snapshots, VerifierState replay idempotence,
// and the every-byte-offset crash-point property — a WAL cut anywhere
// must replay a strict prefix and never resurrect an uncommitted
// record.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "wire/journal.hpp"

namespace cra::wire {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/cra_journal_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (const std::string& f : files_) ::unlink(f.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string path(const std::string& name) {
    const std::string p = dir_ + "/" + name;
    files_.push_back(p);
    files_.push_back(p + ".tmp");  // snapshot staging file
    return p;
  }

  static Bytes read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    Bytes out;
    char c;
    while (in.get(c)) out.push_back(static_cast<std::uint8_t>(c));
    return out;
  }

  static void write_file(const std::string& p, BytesView data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  static std::uint64_t file_size(const std::string& p) {
    struct stat st{};
    EXPECT_EQ(::stat(p.c_str(), &st), 0);
    return static_cast<std::uint64_t>(st.st_size);
  }

  std::string dir_;
  std::vector<std::string> files_;
};

using Record = std::pair<std::uint8_t, Bytes>;

std::vector<Record> replay_all(const std::string& p,
                               Journal::OpenStats* stats = nullptr) {
  std::vector<Record> got;
  Journal j = Journal::open(
      p,
      [&](std::uint8_t kind, BytesView payload) {
        got.emplace_back(kind, Bytes(payload.begin(), payload.end()));
      },
      stats);
  return got;
}

TEST_F(JournalTest, Crc32KnownAnswer) {
  // The canonical IEEE 802.3 check value for "123456789".
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32_ieee(data), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee(BytesView{}), 0u);
}

TEST_F(JournalTest, EmptyFileReplaysNothing) {
  const std::string p = path("empty.wal");
  Journal::OpenStats stats;
  const auto got = replay_all(p, &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(file_size(p), 0u);
}

TEST_F(JournalTest, WalRoundTrip) {
  const std::string p = path("trip.wal");
  {
    Journal j = Journal::open(p, {});
    j.append(1, to_bytes("alpha"));
    j.append(2, to_bytes(""));
    j.append(7, to_bytes("a longer payload with some bytes"));
    j.sync();
  }
  Journal::OpenStats stats;
  const auto got = replay_all(p, &stats);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, to_bytes("alpha"));
  EXPECT_EQ(got[1].first, 2u);
  EXPECT_TRUE(got[1].second.empty());
  EXPECT_EQ(got[2].first, 7u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(JournalTest, TornTailIsTruncatedNotFatal) {
  const std::string p = path("torn.wal");
  {
    Journal j = Journal::open(p, {});
    j.append(1, to_bytes("committed"));
    j.sync();
  }
  const std::uint64_t committed = file_size(p);
  {
    // A crash mid-append: header promises more bytes than exist.
    std::ofstream out(p, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x12, 0x34};
    out.write(torn, sizeof torn);
  }
  Journal::OpenStats stats;
  const auto got = replay_all(p, &stats);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, to_bytes("committed"));
  EXPECT_EQ(stats.truncated_bytes, 6u);
  // The tail is gone for good: a second open sees a clean file.
  EXPECT_EQ(file_size(p), committed);
  Journal::OpenStats again;
  replay_all(p, &again);
  EXPECT_EQ(again.truncated_bytes, 0u);
}

TEST_F(JournalTest, BitFlipStopsReplayAtTheFlippedRecord) {
  const std::string p = path("flip.wal");
  {
    Journal j = Journal::open(p, {});
    j.append(1, to_bytes("first"));
    j.append(2, to_bytes("second"));
    j.append(3, to_bytes("third"));
    j.sync();
  }
  Bytes raw = read_file(p);
  // Record layout: len(4) || crc(4) || kind(1) || payload. Flip a
  // payload byte of the SECOND record.
  const std::size_t second_payload = (8 + 1 + 5) + 8 + 1;
  ASSERT_LT(second_payload, raw.size());
  raw[second_payload] ^= 0x01;
  write_file(p, raw);

  Journal::OpenStats stats;
  const auto got = replay_all(p, &stats);
  ASSERT_EQ(got.size(), 1u);  // third is unreachable behind the damage
  EXPECT_EQ(got[0].second, to_bytes("first"));
  EXPECT_GT(stats.truncated_bytes, 0u);
  EXPECT_EQ(file_size(p), 8u + 1u + 5u);
}

TEST_F(JournalTest, OversizedLengthIsGarbageNotAnAllocation) {
  const std::string p = path("huge.wal");
  Bytes raw;
  append_u32le(raw, 0xFFFFFFFFu);  // len far beyond kMaxRecord
  append_u32le(raw, 0xdeadbeefu);
  raw.push_back(0x55);
  write_file(p, raw);
  Journal::OpenStats stats;
  const auto got = replay_all(p, &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.truncated_bytes, 9u);
  EXPECT_EQ(file_size(p), 0u);
}

TEST_F(JournalTest, ResetDropsEverything) {
  const std::string p = path("reset.wal");
  {
    Journal j = Journal::open(p, {});
    j.append(1, to_bytes("gone"));
    j.sync();
    EXPECT_GT(j.size_bytes(), 0u);
    j.reset();
    EXPECT_EQ(j.size_bytes(), 0u);
  }
  EXPECT_TRUE(replay_all(p).empty());
  EXPECT_EQ(file_size(p), 0u);
}

TEST_F(JournalTest, SnapshotRoundTrip) {
  const std::string p = path("state.snap");
  const Bytes payload = to_bytes("snapshot payload bytes");
  ASSERT_TRUE(write_snapshot_file(p, payload));
  const auto got = read_snapshot_file(p);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST_F(JournalTest, MissingTruncatedAndCorruptSnapshotsReadAsAbsent) {
  const std::string p = path("bad.snap");
  EXPECT_FALSE(read_snapshot_file(p).has_value());  // missing

  const Bytes payload = to_bytes("some snapshot payload");
  ASSERT_TRUE(write_snapshot_file(p, payload));
  Bytes raw = read_file(p);

  Bytes cut(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(
                             raw.size() - 3));
  write_file(p, cut);
  EXPECT_FALSE(read_snapshot_file(p).has_value());  // truncated

  Bytes flipped = raw;
  flipped[flipped.size() - 1] ^= 0x80;
  write_file(p, flipped);
  EXPECT_FALSE(read_snapshot_file(p).has_value());  // bit-flipped

  write_file(p, raw);
  EXPECT_TRUE(read_snapshot_file(p).has_value());  // intact again
}

// --- VerifierState replay semantics ---

constexpr std::size_t kTok = 8;

sap::DeviceReport make_report(std::uint32_t id, std::uint32_t tick) {
  sap::DeviceReport rep;
  rep.id = id;
  rep.tick = tick;
  rep.status = sap::DeviceReportStatus::kEntryOk;
  rep.token.assign(kTok, static_cast<std::uint8_t>(id * 13 + tick));
  return rep;
}

/// The WAL record stream of a small deployment mid-round: two agents,
/// one closed round, a second round open with partial coverage.
std::vector<Record> sample_stream() {
  std::vector<Record> recs;
  VerifierState::Agent a1{1, 4, 11, 0x0100007Fu, 0x3412};
  VerifierState::Agent a2{5, 4, 22, 0x0100007Fu, 0x7856};
  recs.emplace_back(VerifierState::kAgentRecord,
                    VerifierState::encode_agent(a1));
  recs.emplace_back(VerifierState::kAgentRecord,
                    VerifierState::encode_agent(a2));
  recs.emplace_back(VerifierState::kRoundStart,
                    VerifierState::encode_round_start(1));
  std::vector<sap::DeviceReport> r1;
  for (std::uint32_t id = 1; id <= 8; ++id) r1.push_back(make_report(id, 1));
  recs.emplace_back(VerifierState::kReports,
                    VerifierState::encode_reports(1, r1.data(), r1.size(),
                                                  kTok));
  recs.emplace_back(VerifierState::kRoundClose,
                    VerifierState::encode_round_close(1, 1));
  recs.emplace_back(VerifierState::kRoundStart,
                    VerifierState::encode_round_start(2));
  std::vector<sap::DeviceReport> r2;
  for (std::uint32_t id = 1; id <= 5; ++id) r2.push_back(make_report(id, 2));
  recs.emplace_back(VerifierState::kReports,
                    VerifierState::encode_reports(2, r2.data(), r2.size(),
                                                  kTok));
  recs.emplace_back(VerifierState::kRepoll,
                    VerifierState::encode_repoll(2, 1));
  return recs;
}

VerifierState replay_stream(const std::vector<Record>& recs,
                            std::uint32_t devices = 8) {
  VerifierState st;
  st.devices = devices;
  for (const auto& [kind, payload] : recs) st.apply(kind, payload, kTok);
  return st;
}

TEST_F(JournalTest, VerifierStateEncodeDecodeDigest) {
  const VerifierState st = replay_stream(sample_stream());
  EXPECT_EQ(st.rounds_done, 1u);
  EXPECT_EQ(st.tick, 2u);
  EXPECT_TRUE(st.round_open);
  EXPECT_EQ(st.repoll_attempt, 1u);
  EXPECT_EQ(st.agents.size(), 2u);
  EXPECT_EQ(st.reports.size(), 5u);

  const Bytes enc = st.encode(kTok);
  const auto back = VerifierState::decode(enc, kTok);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->encode(kTok), enc);
  EXPECT_EQ(back->digest64(kTok), st.digest64(kTok));
  EXPECT_EQ(back->digest(kTok), st.digest(kTok));

  // Truncated payloads must decode as absent, never throw.
  for (const std::size_t cut : {std::size_t{0}, enc.size() / 2,
                                enc.size() - 1}) {
    EXPECT_FALSE(VerifierState::decode(BytesView(enc.data(), cut), kTok)
                     .has_value());
  }
}

TEST_F(JournalTest, ReplayTwiceIsIdempotent) {
  // A crash between snapshot write and WAL reset replays the same
  // records on top of a state that already reflects them.
  const auto recs = sample_stream();
  const VerifierState once = replay_stream(recs);
  VerifierState twice = replay_stream(recs);
  for (const auto& [kind, payload] : recs) twice.apply(kind, payload, kTok);
  EXPECT_EQ(twice.digest64(kTok), once.digest64(kTok));
  EXPECT_EQ(twice.reports.size(), once.reports.size());
  EXPECT_EQ(twice.encode(kTok), once.encode(kTok));
}

TEST_F(JournalTest, CrashPointPropertyEveryByteOffset) {
  // Write the sample stream as a real WAL, then simulate a crash at
  // EVERY byte offset: the cut file must open without throwing, replay
  // a strict prefix of the committed records, and never produce a
  // record that was not fully written.
  const std::string full_path = path("full.wal");
  const auto recs = sample_stream();
  std::vector<std::uint64_t> boundaries{0};  // file size after k records
  {
    Journal j = Journal::open(full_path, {});
    for (const auto& [kind, payload] : recs) {
      j.append(kind, payload);
      boundaries.push_back(j.size_bytes());
    }
    j.sync();
  }
  const Bytes raw = read_file(full_path);
  ASSERT_EQ(raw.size(), boundaries.back());

  const std::string cut_path = path("cut.wal");
  for (std::size_t cut = 0; cut <= raw.size(); ++cut) {
    write_file(cut_path, BytesView(raw.data(), cut));
    std::vector<Record> got;
    ASSERT_NO_THROW({
      Journal j = Journal::open(
          cut_path, [&](std::uint8_t kind, BytesView payload) {
            got.emplace_back(kind, Bytes(payload.begin(), payload.end()));
          });
    }) << "cut at byte " << cut;

    // Expected: exactly the records whose bytes lie fully inside `cut`.
    std::size_t committed = 0;
    while (committed + 1 < boundaries.size() &&
           boundaries[committed + 1] <= cut) {
      ++committed;
    }
    ASSERT_EQ(got.size(), committed) << "cut at byte " << cut;
    for (std::size_t i = 0; i < committed; ++i) {
      EXPECT_EQ(got[i].first, recs[i].first) << "cut at byte " << cut;
      EXPECT_EQ(got[i].second, recs[i].second) << "cut at byte " << cut;
    }
    // And the torn tail was removed: the file now ends on a boundary.
    EXPECT_EQ(file_size(cut_path), boundaries[committed])
        << "cut at byte " << cut;
  }
}

TEST_F(JournalTest, NextAgentEpochIncrementsAcrossRestarts) {
  const std::string p = path("agent.epoch");
  EXPECT_EQ(next_agent_epoch(p), 1u);
  EXPECT_EQ(next_agent_epoch(p), 2u);
  EXPECT_EQ(next_agent_epoch(p), 3u);
  {
    // A torn tail (crash mid-append) must not roll the epoch backwards.
    std::ofstream out(p, std::ios::binary | std::ios::app);
    const char torn[] = {0x10, 0x00};
    out.write(torn, sizeof torn);
  }
  EXPECT_EQ(next_agent_epoch(p), 4u);
}

}  // namespace
}  // namespace cra::wire
