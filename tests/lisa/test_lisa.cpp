// The two LISA baselines.
#include "lisa/lisa.hpp"

#include <gtest/gtest.h>

namespace cra::lisa {
namespace {

LisaConfig fast(LisaVariant variant) {
  LisaConfig cfg;
  cfg.variant = variant;
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

class LisaBothVariants : public ::testing::TestWithParam<LisaVariant> {};

TEST_P(LisaBothVariants, HonestRoundVerifies) {
  auto sim = LisaSimulation::balanced(fast(GetParam()), 30);
  const LisaRoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.responded, 30u);
  EXPECT_TRUE(r.bad.empty());
  EXPECT_TRUE(r.missing.empty());
}

TEST_P(LisaBothVariants, CompromisedDeviceNamed) {
  auto sim = LisaSimulation::balanced(fast(GetParam()), 30);
  sim.compromise_device(17);
  const LisaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.bad, std::vector<net::NodeId>{17});
  EXPECT_EQ(r.responded, 30u);  // it still reported — just wrongly
}

TEST_P(LisaBothVariants, UnresponsiveLeafNamedMissing) {
  auto sim = LisaSimulation::balanced(fast(GetParam()), 30);
  sim.set_device_unresponsive(30, true);
  const LisaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.missing, std::vector<net::NodeId>{30});
}

TEST_P(LisaBothVariants, RestoreHeals) {
  auto sim = LisaSimulation::balanced(fast(GetParam()), 20);
  sim.compromise_device(5);
  EXPECT_FALSE(sim.run_round().verified);
  sim.restore_device(5);
  sim.advance_time(sim::Duration::from_ms(50));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST_P(LisaBothVariants, SingleDevice) {
  auto sim = LisaSimulation::balanced(fast(GetParam()), 1);
  EXPECT_TRUE(sim.run_round().verified);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LisaBothVariants,
    ::testing::Values(LisaVariant::kAlpha, LisaVariant::kS),
    [](const ::testing::TestParamInfo<LisaVariant>& info) {
      return info.param == LisaVariant::kAlpha ? "alpha" : "s";
    });

TEST(LisaShape, AlphaMovesMoreBytesThanS) {
  // kAlpha: every entry crosses every link on its path, plus the per-
  // entry framing at each hop; kS: entries cross each path-link once,
  // amortized into bundles. Same asymptotics, alpha pays more overhead.
  auto alpha = LisaSimulation::balanced(fast(LisaVariant::kAlpha), 62);
  auto s = LisaSimulation::balanced(fast(LisaVariant::kS), 62);
  const auto ra = alpha.run_round();
  const auto rs = s.run_round();
  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rs.verified);
  EXPECT_GE(ra.messages, rs.messages * 2);
}

TEST(LisaShape, UnresponsiveInnerDarkensSubtreeInBothVariants) {
  for (LisaVariant v : {LisaVariant::kAlpha, LisaVariant::kS}) {
    auto sim = LisaSimulation::balanced(fast(v), 14);
    sim.set_device_unresponsive(1, true);
    const auto r = sim.run_round();
    EXPECT_FALSE(r.verified);
    // 1 and its whole subtree {1,3,4,7,8,9,10} never reach Vrf.
    EXPECT_EQ(r.missing.size(), 7u) << variant_name(v);
  }
}

TEST(LisaShape, NoClockNeeded) {
  // LISA devices attest on receipt: rounds back-to-back with zero idle
  // time still verify (no tick quantization anywhere).
  auto sim = LisaSimulation::balanced(fast(LisaVariant::kAlpha), 10);
  EXPECT_TRUE(sim.run_round().verified);
  EXPECT_TRUE(sim.run_round().verified);
  EXPECT_TRUE(sim.run_round().verified);
}

}  // namespace
}  // namespace cra::lisa
