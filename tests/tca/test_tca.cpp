// The TCA-Model harness: efficiency (Definition 2), soundness
// (Definition 3), and the security game (Definition 4).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tca/efficiency.hpp"
#include "tca/security.hpp"
#include "tca/soundness.hpp"

namespace cra::tca {
namespace {

sap::SapConfig fast_config() {
  sap::SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

TEST(TcaEfficiency, SapSatisfiesDefinition2) {
  const EfficiencyReport r = run_efficiency_sweep(
      sap::SapConfig{},  // paper-scale parameters
      {64, 256, 1024, 4096, 16384, 65536});
  EXPECT_TRUE(r.degree_constant);
  EXPECT_LE(r.degree_bound, 3u);  // Lemma 1
  EXPECT_TRUE(r.utilization_linear) << "r^2=" << r.utilization_fit.r_squared;
  EXPECT_TRUE(r.delay_logarithmic) << "r^2=" << r.delay_fit.r_squared;
  EXPECT_TRUE(r.tca_efficient());
  for (const auto& p : r.points) EXPECT_TRUE(p.verified);
}

TEST(TcaEfficiency, UtilizationSlopeIsFortyBytesPerDevice) {
  // Lemma 2 concretely: 2·l bits = 40 bytes per device with SHA-1.
  const EfficiencyReport r =
      run_efficiency_sweep(fast_config(), {100, 1000, 10000});
  EXPECT_NEAR(r.utilization_fit.slope, 40.0, 0.5);
}

TEST(TcaEfficiency, RejectsTooFewPoints) {
  EXPECT_THROW(run_efficiency_sweep(fast_config(), {10, 20}),
               std::invalid_argument);
}

TEST(TcaSoundness, NoFailuresAcrossShapesAndSizes) {
  const SoundnessReport r = run_soundness_experiment(
      fast_config(), {1, 2, 10, 63, 200},
      {TopologyKind::kBalanced, TopologyKind::kLine, TopologyKind::kRandom},
      /*trials=*/5);
  EXPECT_EQ(r.runs, 75u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_TRUE(r.sound());
}

class SecurityGameTest : public ::testing::TestWithParam<AdvStrategy> {};

TEST_P(SecurityGameTest, AdversaryNeverWins) {
  const GameResult r =
      run_security_game(fast_config(), /*devices=*/30, GetParam(),
                        /*trials=*/20);
  EXPECT_EQ(r.trials, 20u);
  EXPECT_TRUE(r.secure()) << strategy_name(GetParam()) << " won "
                          << r.adv_wins << " of " << r.trials;
  if (GetParam() != AdvStrategy::kHonestButLate) {
    // Every compromised round must also have been *detected*.
    EXPECT_EQ(r.detected, r.trials);
  } else {
    // Clean-at-t_att rounds verify; nothing to detect (yet).
    EXPECT_EQ(r.detected, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SecurityGameTest,
    ::testing::ValuesIn(all_strategies()),
    [](const ::testing::TestParamInfo<AdvStrategy>& info) {
      std::string name = strategy_name(info.param);
      for (char& c : name) {
        if (c == '-' || c == '_') c = '0' + static_cast<char>(info.index % 10);
      }
      return name;
    });

TEST(SecurityGame, LargerSwarmStillSecure) {
  const GameResult r = run_security_game(
      fast_config(), /*devices=*/200, AdvStrategy::kGuessToken,
      /*trials=*/10);
  EXPECT_TRUE(r.secure());
}

TEST(SecurityGame, AuthenticatedRequestVariantSecure) {
  sap::SapConfig cfg = fast_config();
  cfg.authenticate_requests = true;
  for (AdvStrategy s : {AdvStrategy::kGuessToken, AdvStrategy::kReplayChal}) {
    EXPECT_TRUE(run_security_game(cfg, 30, s, 10).secure());
  }
}

TEST(SecurityGame, InputValidation) {
  EXPECT_THROW(run_security_game(fast_config(), 0,
                                 AdvStrategy::kGuessToken, 1),
               std::invalid_argument);
  EXPECT_THROW(run_security_game(fast_config(), 10,
                                 AdvStrategy::kGuessToken, 0),
               std::invalid_argument);
}

TEST(SecurityGame, StrategyNamesDistinct) {
  std::set<std::string> names;
  for (AdvStrategy s : all_strategies()) names.insert(strategy_name(s));
  EXPECT_EQ(names.size(), all_strategies().size());
}

}  // namespace
}  // namespace cra::tca
