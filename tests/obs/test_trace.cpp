#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace cra::obs {
namespace {

TEST(TraceSink, RecordsSpansWithStableTids) {
  TraceSink sink;
  {
    Span s("phase.a", &sink);
  }
  {
    Span s("phase.b", &sink);
    s.sim_range(1'000, 5'000);
  }
  EXPECT_EQ(sink.size(), 2u);
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"phase.a\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.b\""), std::string::npos);
  // Both process lanes are named.
  EXPECT_NE(json.find("\"wall clock\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated time\""), std::string::npos);
}

TEST(TraceSink, SimSpanLandsInSimLaneOnly) {
  TraceSink sink;
  sink.sim_span("sap.inbound", 2'000, 10'000);
  const std::string json = sink.to_json();
  // 2000 ns begin -> ts 2 µs, 8000 ns -> dur 8 µs, in pid 2.
  EXPECT_NE(json.find("\"name\":\"sap.inbound\",\"ph\":\"X\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":2,\"dur\":8"), std::string::npos);
}

TEST(TraceSink, WallSpanHasNonNegativeDuration) {
  TraceSink sink;
  { Span s("w", &sink); }
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
}

TEST(TraceSink, WriteFileRoundTrips) {
  TraceSink sink;
  sink.sim_span("x", 0, 1'000);
  const std::string path =
      testing::TempDir() + "cra_trace_test.json";
  ASSERT_TRUE(sink.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 14, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, sink.to_json());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
}

TEST(GlobalSink, NullByDefaultAndSpansAreNoops) {
  ASSERT_EQ(global_sink(), nullptr);
  { OBS_SPAN("ignored"); }  // must not crash with no sink installed
  TraceSink sink;
  set_global_sink(&sink);
  { OBS_SPAN("seen"); }
  set_global_sink(nullptr);
  { OBS_SPAN("ignored.again"); }
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_NE(sink.to_json().find("\"seen\""), std::string::npos);
}

}  // namespace
}  // namespace cra::obs
