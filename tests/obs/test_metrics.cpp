#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace cra::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndMaxIn) {
  Gauge g;
  EXPECT_FALSE(g.is_set());
  EXPECT_EQ(g.value(), 0);
  g.max_in(5);  // unset gauge takes any value, even a smaller one later
  EXPECT_TRUE(g.is_set());
  EXPECT_EQ(g.value(), 5);
  g.max_in(3);
  EXPECT_EQ(g.value(), 5);
  g.max_in(9);
  EXPECT_EQ(g.value(), 9);
  g.set(-2);  // set overwrites unconditionally
  EXPECT_EQ(g.value(), -2);
  g.reset();
  EXPECT_FALSE(g.is_set());
}

TEST(Histogram, Log2Buckets) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u}) h.record(v);
  // bit_width: 0->0, 1->1, {2,3}->2, 4->3.
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, FullRangeWithoutOverflow) {
  Histogram h;
  h.record(~0ULL);
  EXPECT_EQ(h.buckets()[64], 1u);
  EXPECT_EQ(h.max(), ~0ULL);
}

TEST(Histogram, MergeFoldsMomentsAndBuckets) {
  Histogram a, b;
  a.record(2);
  a.record(100);
  b.record(1);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 103u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
  Histogram empty;
  a.merge_from(empty);  // merging an empty histogram must not touch min
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.count(), 3u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.inc();
  // Registering many more names must not move the earlier handle.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  Counter& a2 = reg.counter("a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(reg.counter_value("a"), 1u);
}

TEST(MetricsRegistry, MissingNamesReadAsZero) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_EQ(reg.gauge_value("nope"), 0);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, MergeIsCommutativeOnTotals) {
  MetricsRegistry a, b;
  a.counter("x").inc(3);
  a.gauge("t").max_in(10);
  a.histogram("h").record(4);
  b.counter("x").inc(5);
  b.counter("y").inc(1);
  b.gauge("t").max_in(20);
  b.histogram("h").record(8);

  MetricsRegistry ab, ba;
  ab.merge_from(a);
  ab.merge_from(b);
  ba.merge_from(b);
  ba.merge_from(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counter_value("x"), 8u);
  EXPECT_EQ(ab.counter_value("y"), 1u);
  EXPECT_EQ(ab.gauge_value("t"), 20);
  EXPECT_EQ(ab.find_histogram("h")->count(), 2u);
}

TEST(MetricsRegistry, MergeWithPrefixNamespaces) {
  MetricsRegistry shard, out;
  shard.counter("net.bytes").inc(7);
  out.merge_from(shard, "round1/");
  EXPECT_EQ(out.counter_value("round1/net.bytes"), 7u);
  EXPECT_EQ(out.counter_value("net.bytes"), 0u);
}

TEST(MetricsRegistry, MergeSkipsUnsetGauges) {
  MetricsRegistry a, b;
  a.gauge("g");  // registered, never set
  b.merge_from(a);
  EXPECT_FALSE(b.gauge("g").is_set());
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.inc(9);
  Gauge& g = reg.gauge("g");
  g.set(4);
  reg.histogram("h").record(2);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);       // the cached handle still works
  EXPECT_FALSE(g.is_set());
  EXPECT_EQ(reg.find_histogram("h")->count(), 0u);
  c.inc();
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

TEST(MetricsRegistry, JsonIsSortedAndStable) {
  MetricsRegistry reg;
  reg.counter("zeta").inc(1);
  reg.counter("alpha").inc(2);
  reg.gauge("g").set(-5);
  reg.histogram("h").record(3);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"alpha\":2,\"zeta\":1},"
            "\"gauges\":{\"g\":-5},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":3,\"min\":3,"
            "\"max\":3,\"buckets\":{\"2\":1}}}}");
  // Registration order must not matter.
  MetricsRegistry reg2;
  reg2.histogram("h").record(3);
  reg2.gauge("g").set(-5);
  reg2.counter("alpha").inc(2);
  reg2.counter("zeta").inc(1);
  EXPECT_EQ(reg2.to_json(), json);
}

}  // namespace
}  // namespace cra::obs
