// Shared known-answer vectors for the crypto suites: FIPS 180-4 / NIST
// CAVP hash vectors and the RFC 2202 / RFC 4231 HMAC test cases. Every
// crypto test binary (streaming hash, one-shot HMAC, midstate cache,
// batch backends) checks the SAME table, so a vector exists in exactly
// one place.
//
// Conventions:
//   * all inputs and outputs are lowercase hex;
//   * an empty expected-MAC string means the RFC has no such case for
//     that algorithm (RFC 2202 and RFC 4231 diverge on the long-key
//     cases: 80-byte vs 131-byte keys) — skip it;
//   * RFC 4231 truncates case 5's output to 128 bits; compare by prefix
//     (expected.size() tells you how much).
#pragma once

namespace cra::crypto::vectors {

struct HashVector {
  const char* msg_hex;
  const char* digest_hex;
};

// FIPS 180-4 examples plus NIST CAVP SHA256ShortMsg.rsp entries (Len =
// 0, 8, 512, 516 bits) — the 516-bit case straddles a block boundary.
inline constexpr HashVector kSha256Vectors[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"616263",  // "abc"
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"6162636462636465636465666465666765666768666768696768696a68696a6b"
     "696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",  // "abcdbcd..."
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"5a86b737eaea8ee976a0a24da63e7ed7eefad18a101c1211e2b3650c5187c2a8"
     "a650547208251f6d4237e661c7bf4c77f335390394c37fa1a9f9be836ac28509",
     "42e61e174fbb3897d6dd6cef3dd2802fe67b331953b06114a65c772859dfc1aa"},
    {"451101250ec6f26652249d59dc974b7361d571a8101cdfd36aba3b5854d3ae086b5fdd"
     "4597721b66e3c0dc5d8c606d9657d0e323283a5217d1f53f2f284f57b85c8a61ac8924"
     "711f895c5ed90ef17745ed2d728abd22a5f7a13479a462d71b56c19a74a40b655c58ed"
     "fe0a188ad2cf46cbf30524f65d423c837dd1ff2bf462ac4198007345bb44dbb7b1c861"
     "298cdf61982a833afc728fae1eda2f87aa2c9480858bec",
     "3c593aa539fdcdae516cdf2f15000f6634185c88f505b39775fb9ab137a10aa2"},
};

// FIPS 180-4 / RFC 3174 SHA-1 examples.
inline constexpr HashVector kSha1Vectors[] = {
    {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
    {"616263", "a9993e364706816aba3e25717850c26c9cd0d89d"},
    {"6162636462636465636465666465666765666768666768696768696a68696a6b"
     "696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
};

struct MacVector {
  const char* key_hex;
  const char* msg_hex;
  const char* sha1_hex;    // RFC 2202 (empty = case not in RFC 2202)
  const char* sha256_hex;  // RFC 4231 (empty = not in RFC 4231;
                           // possibly truncated — compare prefixes)
};

// RFC 2202 / RFC 4231 shared test cases 1-5 plus both long-key case-6
// variants (the RFCs use different key lengths there, so each variant
// carries only the MAC its RFC defines).
inline constexpr MacVector kMacVectors[] = {
    {"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
     "4869205468657265",  // "Hi There"
     "b617318655057264e28bc0b6fb378c8ef146be00",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
    {"4a656665",  // "Jefe"
     "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
    {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
     "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
     "dddddddddddddddddddddddddddddddddddd",  // 0xdd x 50
     "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
    {"0102030405060708090a0b0c0d0e0f10111213141516171819",
     "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd"
     "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",  // 0xcd x 50
     "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
     "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
    {"0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c",
     "546573742057697468205472756e636174696f6e",
     "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
     "a3b6167473100ee06e0c796c2955552b"},  // truncated to 128 bits
    // RFC 2202 case 6: 80-byte key (one SHA-1 block + 16), hashed down
    // before padding.
    {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",  // 0xaa x 80
     "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
     "65204b6579202d2048617368204b6579204669727374",
     "aa4ae5e15272d00e95705637ce8a3b55ed402112",
     ""},
    // RFC 4231 case 6: 131-byte key (above the SHA-256 block size).
    {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaa",  // 0xaa x 131
     "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
     "65204b6579202d2048617368204b6579204669727374",
     "",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
};

}  // namespace cra::crypto::vectors
