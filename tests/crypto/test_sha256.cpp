// SHA-256 known-answer and property tests (FIPS 180-4 vectors).
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"
#include "vectors.hpp"

namespace cra::crypto {
namespace {

TEST(Sha256, KnownAnswerVectors) {
  // FIPS 180-4 + NIST CAVP short-message cases, from the shared table
  // in vectors.hpp (includes a block-straddling 516-bit message).
  for (const auto& v : vectors::kSha256Vectors) {
    const Bytes msg = from_hex(v.msg_hex);
    const auto d = Sha256::digest(msg);
    EXPECT_EQ(to_hex(BytesView(d.data(), d.size())), v.digest_hex);
  }
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes msg = to_bytes("collective remote attestation of IoT swarms");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finalize(), Sha256::digest(msg)) << "split=" << split;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  // A minimal sanity sweep: flipping any single byte changes the digest.
  Bytes msg = to_bytes("base message for bit-flip sweep");
  const auto base = Sha256::digest(msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    Bytes flipped = msg;
    flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ 0x01);
    EXPECT_NE(Sha256::digest(flipped), base) << "byte " << i;
  }
}

TEST(Sha256, CompressionCallCount) {
  EXPECT_EQ(Sha256::compression_calls(0), 1u);
  EXPECT_EQ(Sha256::compression_calls(55), 1u);
  EXPECT_EQ(Sha256::compression_calls(56), 2u);
  EXPECT_EQ(Sha256::compression_calls(64), 2u);
}

}  // namespace
}  // namespace cra::crypto
