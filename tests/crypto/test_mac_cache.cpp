// PrecomputedHmac / PrecomputedMac: the midstate-cached path must be
// indistinguishable from the streaming Hmac for every key and message
// shape — same RFC vectors, same digests for random inputs (including
// keys longer than the block size, which get hashed before padding),
// and the advertised compression saving must hold exactly.
#include "crypto/mac_cache.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/tally.hpp"
#include "vectors.hpp"

namespace cra::crypto {
namespace {

template <typename H>
std::string cached_hex(BytesView key, BytesView data) {
  PrecomputedHmac<H> p;
  p.init(key);
  const auto d = p.mac(data);
  return to_hex(BytesView(d.data(), d.size()));
}

// PrecomputedMac returns Bytes; the template helpers return a
// fixed-size Digest array — lift the latter for EXPECT_EQ.
template <typename D>
Bytes as_bytes(const D& digest) {
  return Bytes(digest.begin(), digest.end());
}

TEST(PrecomputedHmacSha1, Rfc2202Vectors) {
  for (const auto& v : vectors::kMacVectors) {
    if (v.sha1_hex[0] == '\0') continue;
    EXPECT_EQ(cached_hex<Sha1>(from_hex(v.key_hex), from_hex(v.msg_hex)),
              v.sha1_hex);
  }
}

TEST(PrecomputedHmacSha256, Rfc4231Vectors) {
  for (const auto& v : vectors::kMacVectors) {
    if (v.sha256_hex[0] == '\0') continue;
    const std::string want(v.sha256_hex);  // case 5 is truncated: prefix
    EXPECT_EQ(
        cached_hex<Sha256>(from_hex(v.key_hex), from_hex(v.msg_hex))
            .substr(0, want.size()),
        want);
  }
}

// Exhaustive-ish equivalence: random keys and messages spanning the
// interesting length boundaries (empty, short, exactly one block,
// block+1, multi-block, and keys above the block size).
template <typename H>
void expect_matches_streaming() {
  Rng rng(0xfeedface);
  const std::size_t key_lens[] = {1, 16, H::kBlockSize - 1, H::kBlockSize,
                                  H::kBlockSize + 1, 3 * H::kBlockSize};
  const std::size_t msg_lens[] = {0,  1,  24, H::kBlockSize - 9,
                                  H::kBlockSize, H::kBlockSize + 1, 300};
  for (const std::size_t kl : key_lens) {
    Bytes key(kl);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    PrecomputedHmac<H> p;
    p.init(key);
    EXPECT_TRUE(p.ready());
    for (const std::size_t ml : msg_lens) {
      Bytes msg(ml);
      for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
      EXPECT_EQ(p.mac(msg), Hmac<H>::mac(key, msg))
          << "key_len=" << kl << " msg_len=" << ml;
    }
  }
}

TEST(PrecomputedHmacSha1, MatchesStreamingAcrossLengths) {
  expect_matches_streaming<Sha1>();
}

TEST(PrecomputedHmacSha256, MatchesStreamingAcrossLengths) {
  expect_matches_streaming<Sha256>();
}

// The two-part API must behave as if prefix || suffix had been
// concatenated — this is the SAP token shape (PMEM digest + challenge).
TEST(PrecomputedHmac, PrefixSuffixSplitEquivalent) {
  const Bytes key(20, 0x5a);
  Rng rng(7);
  Bytes whole(64);
  for (auto& b : whole) b = static_cast<std::uint8_t>(rng.next());
  PrecomputedHmac<Sha1> p;
  p.init(key);
  const auto expect = p.mac(whole);
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    EXPECT_EQ(p.mac(BytesView(whole.data(), cut),
                    BytesView(whole.data() + cut, whole.size() - cut)),
              expect)
        << "cut=" << cut;
  }
}

TEST(PrecomputedMac, RuntimeDispatchMatchesTemplates) {
  const Bytes key = to_bytes("device-key");
  const Bytes msg = to_bytes("attestation token body");
  PrecomputedMac m1;
  m1.init(HashAlg::kSha1, key);
  EXPECT_EQ(m1.alg(), HashAlg::kSha1);
  EXPECT_EQ(m1.digest_size(), Sha1::kDigestSize);
  EXPECT_EQ(m1.mac(msg), as_bytes(Hmac<Sha1>::mac(key, msg)));

  PrecomputedMac m2;
  m2.init(HashAlg::kSha256, key);
  EXPECT_EQ(m2.digest_size(), Sha256::kDigestSize);
  EXPECT_EQ(m2.mac(msg), as_bytes(Hmac<Sha256>::mac(key, msg)));
}

TEST(PrecomputedMac, MacIntoMatchesBytesApi) {
  const Bytes key(32, 0x11);
  const Bytes prefix(20, 0x22);
  const std::uint8_t suffix[4] = {1, 2, 3, 4};
  PrecomputedMac m;
  m.init(HashAlg::kSha256, key);
  MacBuf buf;
  m.mac_into(prefix, BytesView(suffix, 4), buf);
  EXPECT_EQ(buf.len, Sha256::kDigestSize);
  const Bytes expect = m.mac(prefix, BytesView(suffix, 4));
  EXPECT_EQ(Bytes(buf.view().begin(), buf.view().end()), expect);
}

// Rekey after an explicit clear(): the secure-wiped cache must accept a
// fresh init and then produce RFC-correct digests, and the wipe itself
// must leave the object not-ready (never silently MAC with zeroed
// midstates, which would be a constant-key HMAC).
TEST(PrecomputedHmac, RekeyAfterSecureWipe) {
  const Bytes k1 = to_bytes("Jefe");
  const Bytes k2(20, 0x0b);  // RFC 2202 case 1 key
  const Bytes m1 = to_bytes("what do ya want for nothing?");
  const Bytes m2 = to_bytes("Hi There");

  PrecomputedHmac<Sha1> p(k1);
  ASSERT_TRUE(p.ready());
  const auto before = p.mac(m1);
  EXPECT_EQ(to_hex(BytesView(before.data(), before.size())),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");

  p.clear();
  EXPECT_FALSE(p.ready());
  // The wiped midstates are all-zero — nothing of k1 survives.
  for (const auto w : p.inner_midstate()) EXPECT_EQ(w, 0u);
  for (const auto w : p.outer_midstate()) EXPECT_EQ(w, 0u);

  p.init(k2);
  ASSERT_TRUE(p.ready());
  const auto after = p.mac(m2);
  EXPECT_EQ(to_hex(BytesView(after.data(), after.size())),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  // And the rekeyed cache matches the streaming reference for the old
  // message too (k1's digest must NOT reappear).
  EXPECT_EQ(p.mac(m1), Hmac<Sha1>::mac(k2, m1));
}

// Switching PrecomputedMac to the other algorithm must wipe the now
// inactive cache: midstates are key-derived secrets and the old key may
// have been rotated out precisely because it leaked.
TEST(PrecomputedMac, AlgSwitchWipesTheInactiveCache) {
  const Bytes k1 = to_bytes("old-rotated-key");
  const Bytes k2 = to_bytes("new-key");
  PrecomputedMac m;
  m.init(HashAlg::kSha1, k1);
  ASSERT_TRUE(m.sha1().ready());

  m.init(HashAlg::kSha256, k2);
  EXPECT_EQ(m.alg(), HashAlg::kSha256);
  EXPECT_TRUE(m.sha256().ready());
  EXPECT_FALSE(m.sha1().ready());
  for (const auto w : m.sha1().inner_midstate()) EXPECT_EQ(w, 0u);
  for (const auto w : m.sha1().outer_midstate()) EXPECT_EQ(w, 0u);

  // Switch back: fully functional again under the new key.
  m.init(HashAlg::kSha1, k2);
  EXPECT_EQ(m.mac(to_bytes("x")), as_bytes(Hmac<Sha1>::mac(k2, to_bytes("x"))));
  EXPECT_FALSE(m.sha256().ready());
}

TEST(PrecomputedMac, ReinitSwitchesKey) {
  const Bytes k1 = to_bytes("first"), k2 = to_bytes("second");
  const Bytes msg = to_bytes("m");
  PrecomputedMac m;
  m.init(HashAlg::kSha1, k1);
  EXPECT_EQ(m.mac(msg), as_bytes(Hmac<Sha1>::mac(k1, msg)));
  m.init(HashAlg::kSha1, k2);
  EXPECT_EQ(m.mac(msg), as_bytes(Hmac<Sha1>::mac(k2, msg)));
}

// The cached path saves exactly the two pad-block compressions per MAC
// relative to one-shot HMAC, for every message length.
TEST(PrecomputedMac, CompressionSavingIsExactlyTwo) {
  const Bytes key(20, 0x33);
  PrecomputedMac m;
  m.init(HashAlg::kSha1, key);
  for (const std::size_t len : {std::size_t{0}, std::size_t{24},
                                std::size_t{55}, std::size_t{56},
                                std::size_t{200}}) {
    EXPECT_EQ(PrecomputedMac::compression_calls(HashAlg::kSha1, len) + 2,
              hmac_compression_calls(HashAlg::kSha1, len))
        << "len=" << len;
    // The model must match what the implementation actually executes.
    const Bytes msg(len, 0x44);
    reset_compression_tally();
    (void)m.mac(msg);
    EXPECT_EQ(compression_calls_executed(),
              PrecomputedMac::compression_calls(HashAlg::kSha1, len))
        << "len=" << len;
  }
}

}  // namespace
}  // namespace cra::crypto
