// X25519 against the RFC 7748 test vectors and DH properties.
#include "crypto/x25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cra::crypto {
namespace {

TEST(X25519, Rfc7748Vector1) {
  const Bytes scalar = from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u = from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  const Bytes scalar = from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const Bytes u = from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(to_hex(x25519(scalar, u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellmanVector) {
  // §6.1: Alice and Bob derive the same shared secret.
  const Bytes alice_sk = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes bob_sk = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const Bytes alice_pk = x25519_base(alice_sk);
  const Bytes bob_pk = x25519_base(bob_sk);
  EXPECT_EQ(to_hex(alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const Bytes shared_a = x25519(alice_sk, bob_pk);
  const Bytes shared_b = x25519(bob_sk, alice_pk);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(to_hex(shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, Rfc7748IteratedVector1000) {
  // §5.2: k = u = base; iterate k' = X25519(k, u); u' = k (1,000 times).
  X25519Key k{};
  k[0] = 9;
  X25519Key u = k;
  for (int i = 0; i < 1000; ++i) {
    const X25519Key next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(to_hex(BytesView(k.data(), k.size())),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519, SharedSecretPropertyRandomKeys) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const Bytes a = rng.next_bytes(32);
    const Bytes b = rng.next_bytes(32);
    const Bytes shared_ab = x25519(a, x25519_base(b));
    const Bytes shared_ba = x25519(b, x25519_base(a));
    EXPECT_EQ(shared_ab, shared_ba) << "trial " << trial;
    EXPECT_FALSE(all_zero(shared_ab));
  }
}

TEST(X25519, ClampingMakesCofactorBitsIrrelevant) {
  Rng rng(99);
  Bytes sk = rng.next_bytes(32);
  Bytes sk_mutated = sk;
  sk_mutated[0] = static_cast<std::uint8_t>(sk_mutated[0] ^ 0x07);  // low bits
  sk_mutated[31] = static_cast<std::uint8_t>((sk_mutated[31] & 0x3f) | 0x80);
  // Clamping zeroes the low 3 bits and fixes the top two, so both keys
  // act identically.
  EXPECT_EQ(x25519_base(sk), x25519_base(sk_mutated));
}

TEST(X25519, RejectsBadSizes) {
  EXPECT_THROW(x25519(Bytes(31, 0), Bytes(32, 9)), std::invalid_argument);
  EXPECT_THROW(x25519(Bytes(32, 1), Bytes(33, 9)), std::invalid_argument);
  EXPECT_THROW(x25519_base(Bytes(16, 1)), std::invalid_argument);
}

TEST(X25519, HighBitOfUCoordinateIgnored) {
  // RFC 7748: the top bit of the u-coordinate must be masked.
  Rng rng(5);
  const Bytes sk = rng.next_bytes(32);
  Bytes u = x25519_base(rng.next_bytes(32));
  Bytes u_highbit = u;
  u_highbit[31] = static_cast<std::uint8_t>(u_highbit[31] | 0x80);
  EXPECT_EQ(x25519(sk, u), x25519(sk, u_highbit));
}

}  // namespace
}  // namespace cra::crypto
