// HKDF (RFC 5869 test vectors) and per-device key derivation.
#include "crypto/kdf.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"

namespace cra::crypto {
namespace {

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltAndInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOversizedOutput) {
  const Bytes prk(32, 1);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, ExpandIsPrefixConsistent) {
  const Bytes prk = hkdf_extract({}, to_bytes("ikm"));
  const Bytes long_out = hkdf_expand(prk, to_bytes("ctx"), 64);
  const Bytes short_out = hkdf_expand(prk, to_bytes("ctx"), 20);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 20), short_out);
}

TEST(DeriveDeviceKey, UniquePerDevice) {
  const Bytes master = to_bytes("deployment-master-secret");
  std::set<Bytes> keys;
  for (std::uint32_t id = 1; id <= 200; ++id) {
    keys.insert(derive_device_key(master, id, 20));
  }
  EXPECT_EQ(keys.size(), 200u);  // no collisions across the fleet
}

TEST(DeriveDeviceKey, DeterministicAndLabelSeparated) {
  const Bytes master = to_bytes("m");
  EXPECT_EQ(derive_device_key(master, 5, 20), derive_device_key(master, 5, 20));
  EXPECT_NE(derive_device_key(master, 5, 20),
            derive_device_key(master, 5, 20, "other-label"));
}

TEST(DeriveDeviceKey, RequestedLength) {
  const Bytes master = to_bytes("m");
  EXPECT_EQ(derive_device_key(master, 1, 20).size(), 20u);
  EXPECT_EQ(derive_device_key(master, 1, 32).size(), 32u);
}

}  // namespace
}  // namespace cra::crypto
