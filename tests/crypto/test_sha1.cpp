// SHA-1 known-answer and property tests (FIPS 180-4 / RFC 3174 vectors).
#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"
#include "vectors.hpp"

namespace cra::crypto {
namespace {

std::string sha1_hex(std::string_view msg) {
  const auto d = Sha1::digest(to_bytes(msg));
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha1, KnownAnswerVectors) {
  // FIPS 180-4 / RFC 3174, from the shared table in vectors.hpp.
  for (const auto& v : vectors::kSha1Vectors) {
    const Bytes msg = from_hex(v.msg_hex);
    const auto d = Sha1::digest(msg);
    EXPECT_EQ(to_hex(BytesView(d.data(), d.size())), v.digest_hex);
  }
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  EXPECT_EQ(sha1_hex(std::string(64, 'x')),
            Sha1::digest(to_bytes(std::string(64, 'x'))).size() == 20
                ? sha1_hex(std::string(64, 'x'))
                : "");
  // 55 and 56 bytes straddle the length-field boundary.
  const auto d55 = sha1_hex(std::string(55, 'y'));
  const auto d56 = sha1_hex(std::string(56, 'y'));
  EXPECT_NE(d55, d56);
  EXPECT_EQ(d55.size(), 40u);
}

TEST(Sha1, StreamingMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finalize(), Sha1::digest(msg)) << "split=" << split;
  }
}

TEST(Sha1, ResetReusesObject) {
  Sha1 h;
  h.update(to_bytes("garbage"));
  (void)h.finalize();
  h.reset();
  h.update(to_bytes("abc"));
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, CompressionCallCount) {
  // <= 55 bytes fits one padded block.
  EXPECT_EQ(Sha1::compression_calls(0), 1u);
  EXPECT_EQ(Sha1::compression_calls(55), 1u);
  EXPECT_EQ(Sha1::compression_calls(56), 2u);
  EXPECT_EQ(Sha1::compression_calls(64), 2u);
  EXPECT_EQ(Sha1::compression_calls(119), 2u);
  EXPECT_EQ(Sha1::compression_calls(120), 3u);
  // The paper's PMEM: 50 KB + 9 pad bytes => 801 blocks.
  EXPECT_EQ(Sha1::compression_calls(50 * 1024), 801u);
}

}  // namespace
}  // namespace cra::crypto
