// Backend-equivalence suite: every registered crypto backend must be
// digest- and tally-identical to the scalar reference.
//
// Covers: NIST CAVP SHA-256 vectors (FIPS 180-4 examples + CAVP
// short-message cases), RFC 2202 / RFC 4231 HMAC vectors, batch-vs-serial
// equivalence at sizes that are not a multiple of the lane width, mixed
// message lengths in one batch (exercises the grouping + remainder
// paths), and runtime dispatch (forcing scalar on a SIMD machine yields
// identical tokens).
#include "crypto/backend.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/tally.hpp"

namespace cra::crypto {
namespace {

/// Restores the process-wide active backend after each test.
class BackendTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(set_active_backend("auto")); }
};

struct HashVector {
  const char* msg_hex;
  const char* digest_hex;
};

// FIPS 180-4 examples plus NIST CAVP SHA256ShortMsg.rsp entries (Len =
// 0, 8, 512, 516 bits) — the 516-bit case straddles a block boundary.
const HashVector kSha256Vectors[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"616263",  // "abc"
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"6162636462636465636465666465666765666768666768696768696a68696a6b"
     "696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",  // "abcdbcd..."
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"5a86b737eaea8ee976a0a24da63e7ed7eefad18a101c1211e2b3650c5187c2a8"
     "a650547208251f6d4237e661c7bf4c77f335390394c37fa1a9f9be836ac28509",
     "42e61e174fbb3897d6dd6cef3dd2802fe67b331953b06114a65c772859dfc1aa"},
    {"451101250ec6f26652249d59dc974b7361d571a8101cdfd36aba3b5854d3ae086b5fdd"
     "4597721b66e3c0dc5d8c606d9657d0e323283a5217d1f53f2f284f57b85c8a61ac8924"
     "711f895c5ed90ef17745ed2d728abd22a5f7a13479a462d71b56c19a74a40b655c58ed"
     "fe0a188ad2cf46cbf30524f65d423c837dd1ff2bf462ac4198007345bb44dbb7b1c861"
     "298cdf61982a833afc728fae1eda2f87aa2c9480858bec",
     "3c593aa539fdcdae516cdf2f15000f6634185c88f505b39775fb9ab137a10aa2"},
};

// FIPS 180-4 SHA-1 examples.
const HashVector kSha1Vectors[] = {
    {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
    {"616263", "a9993e364706816aba3e25717850c26c9cd0d89d"},
    {"6162636462636465636465666465666765666768666768696768696a68696a6b"
     "696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
};

struct MacVector {
  const char* key_hex;
  const char* msg_hex;
  const char* sha1_hex;    // RFC 2202 (empty = case not in RFC 2202)
  const char* sha256_hex;  // RFC 4231 (possibly truncated)
};

// RFC 2202 / RFC 4231 shared test cases 1-7 (case 5 output truncated to
// 128 bits in RFC 4231; we compare prefixes).
const MacVector kMacVectors[] = {
    {"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
     "4869205468657265",  // "Hi There"
     "b617318655057264e28bc0b6fb378c8ef146be00",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
    {"4a656665",  // "Jefe"
     "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
    {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
     "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
     "dddddddddddddddddddddddddddddddddddd",  // 0xdd x 50
     "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
    {"0102030405060708090a0b0c0d0e0f10111213141516171819",
     "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd"
     "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",  // 0xcd x 50
     "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
     "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
    {"0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c",
     "546573742057697468205472756e636174696f6e",
     "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
     "a3b6167473100ee06e0c796c2955552b"},
    // Key longer than one block: hashed down before padding.
    {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
     "aaaaaa",  // 0xaa x 131
     "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
     "65204b6579202d2048617368204b6579204669727374",
     "",  // RFC 2202 case 6 uses an 80-byte key; skip SHA-1 here
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
};

Bytes random_bytes(Rng& rng, std::size_t n) { return rng.next_bytes(n); }

void expect_hmac_batch_matches_serial(const Backend& backend, HashAlg alg,
                                      std::size_t n,
                                      const std::vector<std::size_t>& lens) {
  Rng rng(0xba7c4 + n);
  std::vector<Bytes> keys(n), prefixes(n), suffixes(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 16 + i % 23);
    prefixes[i] = random_bytes(rng, lens[i % lens.size()]);
    suffixes[i] = random_bytes(rng, i % 9);
    macs[i].init(alg, keys[i]);
    jobs[i] = MacJob{&macs[i], prefixes[i], suffixes[i]};
  }
  std::vector<MacBuf> got(n);
  backend.hmac_batch(jobs.data(), n, got.data());
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes want = macs[i].mac(prefixes[i], suffixes[i]);
    ASSERT_EQ(to_hex(got[i].view()), to_hex(want))
        << backend.name() << " job " << i << " len " << prefixes[i].size();
  }
}

TEST_F(BackendTest, ScalarAlwaysRegistered) {
  const auto& all = available_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all.front()->name(), "scalar");
  EXPECT_EQ(backend_by_name("scalar"), &scalar_backend());
  EXPECT_EQ(backend_by_name("no-such-backend"), nullptr);
  EXPECT_EQ(scalar_backend().lanes(HashAlg::kSha1), 1u);
  EXPECT_EQ(scalar_backend().lanes(HashAlg::kSha256), 1u);
}

TEST_F(BackendTest, Sha256CavpVectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kSha256Vectors) {
      const Bytes msg = from_hex(v.msg_hex);
      // Replicate across more jobs than the lane width so the SIMD
      // groups actually engage (a singleton would fall back to scalar).
      const std::size_t n = backend->lanes(HashAlg::kSha256) * 2 + 1;
      std::vector<BytesView> msgs(n, BytesView(msg));
      std::vector<Sha256::Digest> got(n);
      backend->sha256_batch(msgs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i]), v.digest_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Sha1VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kSha1Vectors) {
      const Bytes msg = from_hex(v.msg_hex);
      const std::size_t n = backend->lanes(HashAlg::kSha1) * 2 + 1;
      std::vector<BytesView> msgs(n, BytesView(msg));
      std::vector<Sha1::Digest> got(n);
      backend->sha1_batch(msgs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i]), v.digest_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Rfc4231HmacSha256VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kMacVectors) {
      const Bytes key = from_hex(v.key_hex);
      const Bytes msg = from_hex(v.msg_hex);
      const std::string want(v.sha256_hex);
      PrecomputedMac mac(HashAlg::kSha256, key);
      const std::size_t n = backend->lanes(HashAlg::kSha256) * 2;
      std::vector<MacJob> jobs(n, MacJob{&mac, msg, {}});
      std::vector<MacBuf> got(n);
      backend->hmac_batch(jobs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i].view()).substr(0, want.size()), want)
            << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Rfc2202HmacSha1VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kMacVectors) {
      if (v.sha1_hex[0] == '\0') continue;
      const Bytes key = from_hex(v.key_hex);
      const Bytes msg = from_hex(v.msg_hex);
      PrecomputedMac mac(HashAlg::kSha1, key);
      const std::size_t n = backend->lanes(HashAlg::kSha1) * 2;
      std::vector<MacJob> jobs(n, MacJob{&mac, msg, {}});
      std::vector<MacBuf> got(n);
      backend->hmac_batch(jobs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i].view()), v.sha1_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, BatchMatchesSerialAtAwkwardSizes) {
  for (const Backend* backend : available_backends()) {
    for (const HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
      const std::size_t lanes = backend->lanes(alg);
      // Token-sized messages at batch sizes that are never a multiple
      // of the lane width: 1, lanes-1, lanes+1, and a large batch.
      for (const std::size_t n :
           {std::size_t{1}, lanes > 1 ? lanes - 1 : std::size_t{3},
            lanes + 1, std::size_t{1000}}) {
        expect_hmac_batch_matches_serial(*backend, alg, n, {20});
      }
      // Mixed lengths in one batch: exercises grouping, multi-block
      // streams, and the odd-length scalar remainder together.
      expect_hmac_batch_matches_serial(*backend, alg, 4 * lanes + 3,
                                       {0, 1, 20, 55, 56, 64, 200, 1000});
    }
  }
}

TEST_F(BackendTest, VerifyTokensBatch) {
  const Backend& backend = active_backend();
  Rng rng(77);
  const std::size_t n = 4 * backend.lanes(HashAlg::kSha1) + 1;
  std::vector<Bytes> keys(n), msgs(n), tokens(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<VerifyJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    msgs[i] = random_bytes(rng, 24);
    macs[i].init(HashAlg::kSha1, keys[i]);
    tokens[i] = macs[i].mac(msgs[i]);
    if (i % 3 == 0) tokens[i][0] ^= 0x01;  // forge every third token
    jobs[i] = VerifyJob{&macs[i], msgs[i], {}, tokens[i]};
  }
  std::vector<std::uint8_t> ok(n, 0xff);
  const std::size_t matches =
      backend.verify_tokens_batch(jobs.data(), n, ok.data());
  std::size_t want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ok[i], i % 3 == 0 ? 0 : 1) << i;
    want += i % 3 == 0 ? 0 : 1;
  }
  EXPECT_EQ(matches, want);
}

TEST_F(BackendTest, CompressionTallyBackendInvariant) {
  // The deterministic work counters may not depend on the backend: a
  // vector compress over L lanes counts L logical compressions.
  Rng rng(123);
  const std::size_t n = 257;
  std::vector<Bytes> keys(n), prefixes(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    prefixes[i] = random_bytes(rng, i % 5 == 0 ? 200 : 20);
    macs[i].init(HashAlg::kSha1, keys[i]);
    jobs[i] = MacJob{&macs[i], prefixes[i], {}};
  }
  std::vector<MacBuf> out(n);
  std::vector<std::uint64_t> counts;
  for (const Backend* backend : available_backends()) {
    reset_compression_tally();
    backend->hmac_batch(jobs.data(), n, out.data());
    counts.push_back(compression_calls_executed());
  }
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[0])
        << available_backends()[i]->name() << " vs scalar";
  }
}

TEST_F(BackendTest, RuntimeDispatchForcedScalarIdenticalTokens) {
  // Forcing scalar on a SIMD-capable machine must produce the exact
  // same tokens the auto-dispatched backend does.
  Rng rng(2026);
  const std::size_t n = 100;
  std::vector<Bytes> keys(n), msgs(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    msgs[i] = random_bytes(rng, 24);
    macs[i].init(HashAlg::kSha1, keys[i]);
    jobs[i] = MacJob{&macs[i], msgs[i], {}};
  }
  ASSERT_TRUE(set_active_backend("auto"));
  std::vector<MacBuf> auto_out(n);
  active_backend().hmac_batch(jobs.data(), n, auto_out.data());

  ASSERT_TRUE(set_active_backend("scalar"));
  EXPECT_STREQ(active_backend().name(), "scalar");
  std::vector<MacBuf> scalar_out(n);
  active_backend().hmac_batch(jobs.data(), n, scalar_out.data());

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(to_hex(auto_out[i].view()), to_hex(scalar_out[i].view())) << i;
  }
  EXPECT_FALSE(set_active_backend("no-such-backend"));
  EXPECT_STREQ(active_backend().name(), "scalar");  // unchanged on failure
}

}  // namespace
}  // namespace cra::crypto
