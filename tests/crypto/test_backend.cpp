// Backend-equivalence suite: every registered crypto backend must be
// digest- and tally-identical to the scalar reference.
//
// Covers: NIST CAVP SHA-256 vectors (FIPS 180-4 examples + CAVP
// short-message cases), RFC 2202 / RFC 4231 HMAC vectors, batch-vs-serial
// equivalence at sizes that are not a multiple of the lane width, mixed
// message lengths in one batch (exercises the grouping + remainder
// paths), and runtime dispatch (forcing scalar on a SIMD machine yields
// identical tokens).
#include "crypto/backend.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/mac_cache.hpp"
#include "crypto/tally.hpp"
#include "vectors.hpp"

namespace cra::crypto {
namespace {

using vectors::kMacVectors;
using vectors::kSha1Vectors;
using vectors::kSha256Vectors;

/// Restores the process-wide active backend after each test.
class BackendTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(set_active_backend("auto")); }
};

Bytes random_bytes(Rng& rng, std::size_t n) { return rng.next_bytes(n); }

void expect_hmac_batch_matches_serial(const Backend& backend, HashAlg alg,
                                      std::size_t n,
                                      const std::vector<std::size_t>& lens) {
  Rng rng(0xba7c4 + n);
  std::vector<Bytes> keys(n), prefixes(n), suffixes(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 16 + i % 23);
    prefixes[i] = random_bytes(rng, lens[i % lens.size()]);
    suffixes[i] = random_bytes(rng, i % 9);
    macs[i].init(alg, keys[i]);
    jobs[i] = MacJob{&macs[i], prefixes[i], suffixes[i]};
  }
  std::vector<MacBuf> got(n);
  backend.hmac_batch(jobs.data(), n, got.data());
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes want = macs[i].mac(prefixes[i], suffixes[i]);
    ASSERT_EQ(to_hex(got[i].view()), to_hex(want))
        << backend.name() << " job " << i << " len " << prefixes[i].size();
  }
}

TEST_F(BackendTest, ScalarAlwaysRegistered) {
  const auto& all = available_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all.front()->name(), "scalar");
  EXPECT_EQ(backend_by_name("scalar"), &scalar_backend());
  EXPECT_EQ(backend_by_name("no-such-backend"), nullptr);
  EXPECT_EQ(scalar_backend().lanes(HashAlg::kSha1), 1u);
  EXPECT_EQ(scalar_backend().lanes(HashAlg::kSha256), 1u);
}

TEST_F(BackendTest, Sha256CavpVectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kSha256Vectors) {
      const Bytes msg = from_hex(v.msg_hex);
      // Replicate across more jobs than the lane width so the SIMD
      // groups actually engage (a singleton would fall back to scalar).
      const std::size_t n = backend->lanes(HashAlg::kSha256) * 2 + 1;
      std::vector<BytesView> msgs(n, BytesView(msg));
      std::vector<Sha256::Digest> got(n);
      backend->sha256_batch(msgs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i]), v.digest_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Sha1VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kSha1Vectors) {
      const Bytes msg = from_hex(v.msg_hex);
      const std::size_t n = backend->lanes(HashAlg::kSha1) * 2 + 1;
      std::vector<BytesView> msgs(n, BytesView(msg));
      std::vector<Sha1::Digest> got(n);
      backend->sha1_batch(msgs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i]), v.digest_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Rfc4231HmacSha256VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kMacVectors) {
      if (v.sha256_hex[0] == '\0') continue;
      const Bytes key = from_hex(v.key_hex);
      const Bytes msg = from_hex(v.msg_hex);
      const std::string want(v.sha256_hex);
      PrecomputedMac mac(HashAlg::kSha256, key);
      const std::size_t n = backend->lanes(HashAlg::kSha256) * 2;
      std::vector<MacJob> jobs(n, MacJob{&mac, msg, {}});
      std::vector<MacBuf> got(n);
      backend->hmac_batch(jobs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i].view()).substr(0, want.size()), want)
            << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, Rfc2202HmacSha1VectorsAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const auto& v : kMacVectors) {
      if (v.sha1_hex[0] == '\0') continue;
      const Bytes key = from_hex(v.key_hex);
      const Bytes msg = from_hex(v.msg_hex);
      PrecomputedMac mac(HashAlg::kSha1, key);
      const std::size_t n = backend->lanes(HashAlg::kSha1) * 2;
      std::vector<MacJob> jobs(n, MacJob{&mac, msg, {}});
      std::vector<MacBuf> got(n);
      backend->hmac_batch(jobs.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(to_hex(got[i].view()), v.sha1_hex) << backend->name();
      }
    }
  }
}

TEST_F(BackendTest, BatchMatchesSerialAtAwkwardSizes) {
  for (const Backend* backend : available_backends()) {
    for (const HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
      const std::size_t lanes = backend->lanes(alg);
      // Token-sized messages at batch sizes that are never a multiple
      // of the lane width: 1, lanes-1, lanes+1, and a large batch.
      for (const std::size_t n :
           {std::size_t{1}, lanes > 1 ? lanes - 1 : std::size_t{3},
            lanes + 1, std::size_t{1000}}) {
        expect_hmac_batch_matches_serial(*backend, alg, n, {20});
      }
      // Mixed lengths in one batch: exercises grouping, multi-block
      // streams, and the odd-length scalar remainder together.
      expect_hmac_batch_matches_serial(*backend, alg, 4 * lanes + 3,
                                       {0, 1, 20, 55, 56, 64, 200, 1000});
    }
  }
}

// Degenerate batch sizes through every backend: zero jobs must be a
// no-op (no null-pointer touch, no lane packing on nothing), and a
// single job must take the scalar fallback and still match the serial
// reference. These are the edges the SIMD grouping code special-cases.
TEST_F(BackendTest, ZeroAndOneJobBatchesAllBackends) {
  for (const Backend* backend : available_backends()) {
    for (const HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
      // n = 0 with null arrays: must return without reading anything.
      backend->hmac_batch(nullptr, 0, nullptr);
      EXPECT_EQ(backend->verify_tokens_batch(nullptr, 0, nullptr), 0u)
          << backend->name();

      // n = 1: exercises the below-lane-width scalar path.
      Rng rng(9);
      const Bytes key = random_bytes(rng, 20);
      PrecomputedMac mac(alg, key);
      const Bytes msg = to_bytes("single-job body");
      MacJob job{&mac, msg, {}};
      MacBuf out;
      backend->hmac_batch(&job, 1, &out);
      EXPECT_EQ(to_hex(out.view()), to_hex(mac.mac(msg))) << backend->name();

      const Bytes token = mac.mac(msg);
      VerifyJob good{&mac, msg, {}, token};
      std::uint8_t ok = 0xff;
      EXPECT_EQ(backend->verify_tokens_batch(&good, 1, &ok), 1u)
          << backend->name();
      EXPECT_EQ(ok, 1u);

      Bytes forged = token;
      forged[0] ^= 0x80;
      VerifyJob bad{&mac, msg, {}, forged};
      EXPECT_EQ(backend->verify_tokens_batch(&bad, 1, &ok), 0u)
          << backend->name();
      EXPECT_EQ(ok, 0u);
    }
  }
}

// Same for the raw digest batches.
TEST_F(BackendTest, ZeroAndOneMessageDigestBatches) {
  for (const Backend* backend : available_backends()) {
    backend->sha1_batch(nullptr, 0, nullptr);
    backend->sha256_batch(nullptr, 0, nullptr);
    const Bytes msg = to_bytes("abc");
    const BytesView view(msg);
    Sha1::Digest d1;
    backend->sha1_batch(&view, 1, &d1);
    EXPECT_EQ(to_hex(d1), "a9993e364706816aba3e25717850c26c9cd0d89d")
        << backend->name();
    Sha256::Digest d256;
    backend->sha256_batch(&view, 1, &d256);
    EXPECT_EQ(to_hex(d256),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        << backend->name();
  }
}

TEST_F(BackendTest, VerifyTokensBatch) {
  const Backend& backend = active_backend();
  Rng rng(77);
  const std::size_t n = 4 * backend.lanes(HashAlg::kSha1) + 1;
  std::vector<Bytes> keys(n), msgs(n), tokens(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<VerifyJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    msgs[i] = random_bytes(rng, 24);
    macs[i].init(HashAlg::kSha1, keys[i]);
    tokens[i] = macs[i].mac(msgs[i]);
    if (i % 3 == 0) tokens[i][0] ^= 0x01;  // forge every third token
    jobs[i] = VerifyJob{&macs[i], msgs[i], {}, tokens[i]};
  }
  std::vector<std::uint8_t> ok(n, 0xff);
  const std::size_t matches =
      backend.verify_tokens_batch(jobs.data(), n, ok.data());
  std::size_t want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ok[i], i % 3 == 0 ? 0 : 1) << i;
    want += i % 3 == 0 ? 0 : 1;
  }
  EXPECT_EQ(matches, want);
}

TEST_F(BackendTest, CompressionTallyBackendInvariant) {
  // The deterministic work counters may not depend on the backend: a
  // vector compress over L lanes counts L logical compressions.
  Rng rng(123);
  const std::size_t n = 257;
  std::vector<Bytes> keys(n), prefixes(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    prefixes[i] = random_bytes(rng, i % 5 == 0 ? 200 : 20);
    macs[i].init(HashAlg::kSha1, keys[i]);
    jobs[i] = MacJob{&macs[i], prefixes[i], {}};
  }
  std::vector<MacBuf> out(n);
  std::vector<std::uint64_t> counts;
  for (const Backend* backend : available_backends()) {
    reset_compression_tally();
    backend->hmac_batch(jobs.data(), n, out.data());
    counts.push_back(compression_calls_executed());
  }
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[0])
        << available_backends()[i]->name() << " vs scalar";
  }
}

TEST_F(BackendTest, RuntimeDispatchForcedScalarIdenticalTokens) {
  // Forcing scalar on a SIMD-capable machine must produce the exact
  // same tokens the auto-dispatched backend does.
  Rng rng(2026);
  const std::size_t n = 100;
  std::vector<Bytes> keys(n), msgs(n);
  std::vector<PrecomputedMac> macs(n);
  std::vector<MacJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = random_bytes(rng, 20);
    msgs[i] = random_bytes(rng, 24);
    macs[i].init(HashAlg::kSha1, keys[i]);
    jobs[i] = MacJob{&macs[i], msgs[i], {}};
  }
  ASSERT_TRUE(set_active_backend("auto"));
  std::vector<MacBuf> auto_out(n);
  active_backend().hmac_batch(jobs.data(), n, auto_out.data());

  ASSERT_TRUE(set_active_backend("scalar"));
  EXPECT_STREQ(active_backend().name(), "scalar");
  std::vector<MacBuf> scalar_out(n);
  active_backend().hmac_batch(jobs.data(), n, scalar_out.data());

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(to_hex(auto_out[i].view()), to_hex(scalar_out[i].view())) << i;
  }
  EXPECT_FALSE(set_active_backend("no-such-backend"));
  EXPECT_STREQ(active_backend().name(), "scalar");  // unchanged on failure
}

}  // namespace
}  // namespace cra::crypto
