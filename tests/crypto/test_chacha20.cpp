// ChaCha20 (RFC 8439 test vector) and SecureRandom determinism.
#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace cra::crypto {
namespace {

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2.
  Bytes key;
  for (int i = 0; i < 32; ++i) key.push_back(static_cast<std::uint8_t>(i));
  const Bytes nonce =
      from_hex("000000090000004a00000000");
  ChaCha20 stream(key, nonce, /*counter=*/1);
  const auto block = stream.next_block();
  EXPECT_EQ(to_hex(BytesView(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 §2.4.2: the "sunscreen" plaintext.
  Bytes key;
  for (int i = 0; i < 32; ++i) key.push_back(static_cast<std::uint8_t>(i));
  const Bytes nonce = from_hex("000000000000004a00000000");
  ChaCha20 stream(key, nonce, /*counter=*/1);
  Bytes data = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  stream.crypt_inplace(data);
  EXPECT_EQ(to_hex(BytesView(data.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, RoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x24);
  Bytes data = to_bytes("round trip through the stream cipher");
  const Bytes original = data;
  ChaCha20 enc(key, nonce);
  enc.crypt_inplace(data);
  EXPECT_NE(data, original);
  ChaCha20 dec(key, nonce);
  dec.crypt_inplace(data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, RejectsBadKeyAndNonceSizes) {
  const Bytes short_key(16, 0);
  const Bytes nonce(12, 0);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  const Bytes key(32, 0);
  const Bytes short_nonce(8, 0);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(SecureRandom, DeterministicForSameSeed) {
  SecureRandom a(std::uint64_t{7});
  SecureRandom b(std::uint64_t{7});
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.u64(), b.u64());
}

TEST(SecureRandom, DifferentSeedsDiverge) {
  SecureRandom a(std::uint64_t{7});
  SecureRandom b(std::uint64_t{8});
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(SecureRandom, StreamIsStateful) {
  SecureRandom a(std::uint64_t{9});
  const Bytes first = a.bytes(32);
  const Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace cra::crypto
