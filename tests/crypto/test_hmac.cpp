// HMAC known-answer tests (RFC 2202 for HMAC-SHA1, RFC 4231 for
// HMAC-SHA256) plus the runtime-dispatch and cost-model helpers.
#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace cra::crypto {
namespace {

template <typename H>
std::string mac_hex(BytesView key, BytesView data) {
  const auto d = Hmac<H>::mac(key, data);
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex<Sha1>(key, to_bytes("Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(mac_hex<Sha1>(to_bytes("Jefe"),
                          to_bytes("what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(mac_hex<Sha1>(key, data),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202Case6LongKey) {
  // Key longer than the block size is hashed first.
  const Bytes key(80, 0xaa);
  EXPECT_EQ(mac_hex<Sha1>(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex<Sha256>(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(mac_hex<Sha256>(to_bytes("Jefe"),
                            to_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacDispatch, MatchesTemplates) {
  const Bytes key = to_bytes("k");
  const Bytes msg = to_bytes("m");
  const auto sha1_direct = Hmac<Sha1>::mac(key, msg);
  EXPECT_EQ(hmac(HashAlg::kSha1, key, msg),
            Bytes(sha1_direct.begin(), sha1_direct.end()));
  const auto sha256_direct = Hmac<Sha256>::mac(key, msg);
  EXPECT_EQ(hmac(HashAlg::kSha256, key, msg),
            Bytes(sha256_direct.begin(), sha256_direct.end()));
}

TEST(HmacDispatch, DigestSizes) {
  EXPECT_EQ(digest_size(HashAlg::kSha1), 20u);
  EXPECT_EQ(digest_size(HashAlg::kSha256), 32u);
  EXPECT_EQ(security_param_bits(HashAlg::kSha1), 160u);
  EXPECT_EQ(security_param_bits(HashAlg::kSha256), 256u);
}

TEST(HmacCostModel, CompressionCalls) {
  // Inner hash: block + message; outer: block + digest (1 block of
  // padding applies to each).
  EXPECT_EQ(HmacSha1::compression_calls(0),
            Sha1::compression_calls(64) + Sha1::compression_calls(84));
  // 50 KB PMEM + 4-byte chal: the paper's attest message.
  const std::uint64_t calls = HmacSha1::compression_calls(50 * 1024 + 4);
  EXPECT_EQ(calls, Sha1::compression_calls(64 + 50 * 1024 + 4) +
                       Sha1::compression_calls(84));
  EXPECT_NEAR(static_cast<double>(calls), 803.0, 2.0);
}

TEST(HmacKeyedness, DifferentKeysDifferentMacs) {
  const Bytes msg = to_bytes("same message");
  const auto a = Hmac<Sha1>::mac(to_bytes("key-a"), msg);
  const auto b = Hmac<Sha1>::mac(to_bytes("key-b"), msg);
  EXPECT_NE(a, b);
}

TEST(HmacStreaming, MultipleUpdates) {
  Hmac<Sha1> h(to_bytes("streaming-key"));
  h.update(to_bytes("part one, "));
  h.update(to_bytes("part two"));
  const auto streamed = h.finalize();
  EXPECT_EQ(streamed, Hmac<Sha1>::mac(to_bytes("streaming-key"),
                                      to_bytes("part one, part two")));
}

}  // namespace
}  // namespace cra::crypto
