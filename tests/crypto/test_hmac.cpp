// HMAC known-answer tests (RFC 2202 for HMAC-SHA1, RFC 4231 for
// HMAC-SHA256) plus the runtime-dispatch and cost-model helpers.
#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "vectors.hpp"

namespace cra::crypto {
namespace {

template <typename H>
std::string mac_hex(BytesView key, BytesView data) {
  const auto d = Hmac<H>::mac(key, data);
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(HmacSha1, Rfc2202Vectors) {
  for (const auto& v : vectors::kMacVectors) {
    if (v.sha1_hex[0] == '\0') continue;  // RFC 4231-only long-key case
    EXPECT_EQ(mac_hex<Sha1>(from_hex(v.key_hex), from_hex(v.msg_hex)),
              v.sha1_hex);
  }
}

TEST(HmacSha256, Rfc4231Vectors) {
  for (const auto& v : vectors::kMacVectors) {
    if (v.sha256_hex[0] == '\0') continue;  // RFC 2202-only long-key case
    // Case 5's expected output is truncated to 128 bits: compare by
    // prefix, as the shared-vector convention specifies.
    const std::string want(v.sha256_hex);
    EXPECT_EQ(
        mac_hex<Sha256>(from_hex(v.key_hex), from_hex(v.msg_hex))
            .substr(0, want.size()),
        want);
  }
}

TEST(HmacDispatch, MatchesTemplates) {
  const Bytes key = to_bytes("k");
  const Bytes msg = to_bytes("m");
  const auto sha1_direct = Hmac<Sha1>::mac(key, msg);
  EXPECT_EQ(hmac(HashAlg::kSha1, key, msg),
            Bytes(sha1_direct.begin(), sha1_direct.end()));
  const auto sha256_direct = Hmac<Sha256>::mac(key, msg);
  EXPECT_EQ(hmac(HashAlg::kSha256, key, msg),
            Bytes(sha256_direct.begin(), sha256_direct.end()));
}

TEST(HmacDispatch, DigestSizes) {
  EXPECT_EQ(digest_size(HashAlg::kSha1), 20u);
  EXPECT_EQ(digest_size(HashAlg::kSha256), 32u);
  EXPECT_EQ(security_param_bits(HashAlg::kSha1), 160u);
  EXPECT_EQ(security_param_bits(HashAlg::kSha256), 256u);
}

TEST(HmacCostModel, CompressionCalls) {
  // Inner hash: block + message; outer: block + digest (1 block of
  // padding applies to each).
  EXPECT_EQ(HmacSha1::compression_calls(0),
            Sha1::compression_calls(64) + Sha1::compression_calls(84));
  // 50 KB PMEM + 4-byte chal: the paper's attest message.
  const std::uint64_t calls = HmacSha1::compression_calls(50 * 1024 + 4);
  EXPECT_EQ(calls, Sha1::compression_calls(64 + 50 * 1024 + 4) +
                       Sha1::compression_calls(84));
  EXPECT_NEAR(static_cast<double>(calls), 803.0, 2.0);
}

TEST(HmacKeyedness, DifferentKeysDifferentMacs) {
  const Bytes msg = to_bytes("same message");
  const auto a = Hmac<Sha1>::mac(to_bytes("key-a"), msg);
  const auto b = Hmac<Sha1>::mac(to_bytes("key-b"), msg);
  EXPECT_NE(a, b);
}

TEST(HmacStreaming, MultipleUpdates) {
  Hmac<Sha1> h(to_bytes("streaming-key"));
  h.update(to_bytes("part one, "));
  h.update(to_bytes("part two"));
  const auto streamed = h.finalize();
  EXPECT_EQ(streamed, Hmac<Sha1>::mac(to_bytes("streaming-key"),
                                      to_bytes("part one, part two")));
}

}  // namespace
}  // namespace cra::crypto
