// FaultInjector: forward-only windowed arming, tallying, partition cut
// computation, and the fault.* observability wiring.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cra::fault {
namespace {

using sim::Duration;
using sim::SimTime;

FaultPlan three_event_plan() {
  FaultPlan plan;
  plan.crash(SimTime::from_ms(10), 1)
      .reboot(SimTime::from_ms(20), 1)
      .crash(SimTime::from_ms(30), 2);
  return plan;
}

TEST(FaultInjector, ArmsEachEventExactlyOnceInOrder) {
  FaultInjector inj(three_event_plan());
  std::vector<FaultEvent> armed;
  const auto sink = [&](const FaultEvent& ev) { armed.push_back(ev); };

  EXPECT_EQ(inj.arm_until(SimTime::from_ms(5), sink), 0u);
  EXPECT_EQ(inj.arm_until(SimTime::from_ms(20), sink), 2u);
  // Re-arming the same horizon hands over nothing: cursor moved.
  EXPECT_EQ(inj.arm_until(SimTime::from_ms(20), sink), 0u);
  EXPECT_FALSE(inj.exhausted());
  EXPECT_EQ(inj.arm_until(SimTime::from_ms(1000), sink), 1u);
  EXPECT_TRUE(inj.exhausted());

  ASSERT_EQ(armed.size(), 3u);
  EXPECT_TRUE(std::is_sorted(armed.begin(), armed.end(),
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.at < b.at;
                             }));
}

TEST(FaultInjector, HorizonIsInclusive) {
  // An event exactly at the horizon belongs to the window that ends
  // there — run_round passes its own end time and must see the event.
  FaultPlan plan;
  plan.crash(SimTime::from_ms(10), 1);
  FaultInjector inj(std::move(plan));
  EXPECT_EQ(inj.arm_until(SimTime::from_ms(10),
                          [](const FaultEvent&) {}),
            1u);
}

TEST(FaultInjector, TallyCountsByKind) {
  FaultPlan plan;
  plan.crash_for(SimTime::from_ms(1), 1, Duration::from_ms(5))
      .loss_spike_for(SimTime::from_ms(2), 0.5, Duration::from_ms(5))
      .partition_for(SimTime::from_ms(3), {2, 5}, Duration::from_ms(5))
      .clock_skew(SimTime::from_ms(4), 3, Duration::from_ms(1));
  FaultInjector inj(std::move(plan));
  inj.arm_until(SimTime::from_sec(1), [](const FaultEvent&) {});
  const FaultTally& t = inj.tally();
  EXPECT_EQ(t.crashes, 1u);
  EXPECT_EQ(t.reboots, 1u);
  EXPECT_EQ(t.loss_spikes, 1u);
  EXPECT_EQ(t.loss_clears, 1u);
  EXPECT_EQ(t.partitions, 1u);
  EXPECT_EQ(t.heals, 1u);
  EXPECT_EQ(t.clock_skews, 1u);
  EXPECT_EQ(t.total(), 7u);
}

TEST(FaultInjector, PartitionCutSeversExactlyTheBoundary) {
  // 14-device balanced binary tree; island = subtree of position 1
  // ({1,3,4,7,8,9,10}). The only tree edge crossing the boundary is
  // 0-1, so the cut is that single edge, reported from inside out.
  const net::Tree tree = net::balanced_kary_tree(14, 2);
  const auto island = subtree_positions(tree, 1);
  const auto cut = partition_cut(tree, island);
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0].first, 1u);
  EXPECT_EQ(cut[0].second, 0u);
}

TEST(FaultInjector, PartitionCutOfInnerIslandSeversBothSides) {
  // Island = {1} alone: cut severs the parent edge (1,0) and both child
  // edges (1,3), (1,4).
  const net::Tree tree = net::balanced_kary_tree(14, 2);
  const auto cut = partition_cut(tree, {1});
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut[0], (std::pair<net::NodeId, net::NodeId>{1, 0}));
  EXPECT_EQ(cut[1], (std::pair<net::NodeId, net::NodeId>{1, 3}));
  EXPECT_EQ(cut[2], (std::pair<net::NodeId, net::NodeId>{1, 4}));
}

TEST(FaultInjector, PartitionCutIgnoresTheVerifierPosition) {
  // Position 0 is the verifier: plans cannot cut it off (the island
  // filter drops it), so an island containing 0 severs nothing around 0
  // beyond the ordinary member edges.
  const net::Tree tree = net::balanced_kary_tree(6, 2);
  const auto cut = partition_cut(tree, {0});
  EXPECT_TRUE(cut.empty());
}

TEST(FaultInjector, MetricNamesCoverEveryKind) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kJoin); ++k) {
    const char* name = fault_metric_name(static_cast<FaultKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(std::string(name).rfind("fault.", 0), 0u)
        << "metric for kind " << k << " must live under fault.*: " << name;
  }
}

TEST(FaultInjector, ObserveEventBumpsTheMatchingCounter) {
  obs::MetricsRegistry reg;
  FaultPlan plan;
  plan.crash(SimTime::from_ms(1), 1).crash(SimTime::from_ms(2), 2);
  for (const FaultEvent& ev : plan.events()) observe_event(reg, ev);
  EXPECT_EQ(reg.counter("fault.crashes").value(), 2u);
}

}  // namespace
}  // namespace cra::fault
