// FaultPlan: ordering, pairing, text round-trip, and the churn
// generator's purity (same seed + tree + profile => identical plan).
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cra::fault {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(FaultPlan, EventsSortedByTimeThenInsertion) {
  FaultPlan plan;
  plan.crash(SimTime::from_ms(30), 5)
      .reboot(SimTime::from_ms(10), 5)
      .sleep(SimTime::from_ms(10), 7)  // same time: insertion order wins
      .wake(SimTime::from_ms(20), 7);
  const auto& ev = plan.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, FaultKind::kReboot);
  EXPECT_EQ(ev[1].kind, FaultKind::kSleep);
  EXPECT_EQ(ev[2].kind, FaultKind::kWake);
  EXPECT_EQ(ev[3].kind, FaultKind::kCrash);
}

TEST(FaultPlan, PairedBuildersEmitBothHalves) {
  FaultPlan plan;
  plan.crash_for(SimTime::from_ms(100), 3, Duration::from_ms(50));
  const auto& ev = plan.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, FaultKind::kCrash);
  EXPECT_EQ(ev[0].device, 3u);
  EXPECT_EQ(ev[0].duration.ms(), 50.0);  // span length for tracing
  EXPECT_EQ(ev[1].kind, FaultKind::kReboot);
  EXPECT_EQ(ev[1].at, SimTime::from_ms(150));
}

TEST(FaultPlan, PartitionSubtreeCutsWholeSubtree) {
  // Balanced binary tree over 14 devices: node 1's subtree is
  // {1,3,4,7,8,9,10} in heap layout.
  const net::Tree tree = net::balanced_kary_tree(14, 2);
  const auto sub = subtree_positions(tree, 1);
  EXPECT_EQ(sub, (std::vector<net::NodeId>{1, 3, 4, 7, 8, 9, 10}));

  FaultPlan plan;
  plan.partition_subtree(SimTime::from_ms(10), tree, 1, Duration::from_ms(5));
  const auto& ev = plan.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, FaultKind::kPartition);
  EXPECT_EQ(ev[0].island, sub);
  EXPECT_EQ(ev[1].kind, FaultKind::kHeal);
  EXPECT_EQ(ev[1].island, sub);
}

TEST(FaultPlan, EveryEventCarriesAFreshDraw) {
  FaultPlan plan(42);
  plan.loss_spike(SimTime::from_ms(1), 0.3)
      .loss_clear(SimTime::from_ms(2))
      .crash(SimTime::from_ms(3), 1);
  const auto& ev = plan.events();
  // Draws come from a SplitMix64 stream: nonzero and pairwise distinct
  // (astronomically unlikely otherwise).
  EXPECT_NE(ev[0].draw, 0u);
  EXPECT_NE(ev[0].draw, ev[1].draw);
  EXPECT_NE(ev[1].draw, ev[2].draw);

  FaultPlan again(42);
  again.loss_spike(SimTime::from_ms(1), 0.3)
      .loss_clear(SimTime::from_ms(2))
      .crash(SimTime::from_ms(3), 1);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].draw, again.events()[i].draw) << i;
  }
}

TEST(FaultPlan, FormatParseRoundTrip) {
  const net::Tree tree = net::balanced_kary_tree(14, 2);
  FaultPlan plan;
  plan.crash_for(SimTime::from_ms(10), 3, Duration::from_ms(40))
      .sleep_for(SimTime::from_ms(20), 5, Duration::from_ms(30))
      .link_down_for(SimTime::from_ms(25), 1, 4, Duration::from_ms(10))
      .partition_subtree(SimTime::from_ms(30), tree, 2, Duration::from_ms(20))
      .loss_spike_for(SimTime::from_ms(40), 0.25, Duration::from_ms(15))
      .clock_skew(SimTime::from_ms(50), 9, Duration::from_ms(-3));

  const FaultPlan parsed = FaultPlan::parse(plan.format());
  ASSERT_EQ(parsed.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = parsed.events()[i];
    EXPECT_EQ(a.at, b.at) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.device, b.device) << i;
    EXPECT_EQ(a.peer, b.peer) << i;
    EXPECT_EQ(a.island, b.island) << i;
    EXPECT_DOUBLE_EQ(a.rate, b.rate) << i;
    EXPECT_EQ(a.skew_ns, b.skew_ns) << i;
  }
  // format() of the parse is stable (canonical form).
  EXPECT_EQ(parsed.format(), plan.format());
}

TEST(FaultPlan, ParseRejectsGarbageWithLineNumber) {
  EXPECT_THROW((void)FaultPlan::parse("@10ms explode 3"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash 3"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("@10ms crash"), std::invalid_argument);
  try {
    (void)FaultPlan::parse("@1ms crash 2\n@2ms bogus 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos)
        << "error should carry the line number: " << e.what();
  }
}

// Regression suite for the silent-acceptance audit: every malformed
// input below used to either partially apply, wrap around an integer
// type, or hit UB in a double->int64 cast. All must now throw with a
// line AND column diagnostic.
TEST(FaultPlan, ParseRejectionsCarryLineAndColumn) {
  auto expect_rejects = [](const char* text, const char* needle) {
    try {
      (void)FaultPlan::parse(text);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line "), std::string::npos) << what;
      EXPECT_NE(what.find("col "), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos)
          << "wanted '" << needle << "' in: " << what;
    }
  };
  // Unknown event kind (never silently skipped).
  expect_rejects("@10ms explode 3", "unknown fault kind");
  // Trailing garbage after a well-formed event used to fail only via the
  // generic arity message; now it names the stray token.
  expect_rejects("@10ms crash 3 7", "trailing garbage");
  expect_rejects("@10ms loss-clear oops", "trailing garbage");
  expect_rejects("@10ms skew 2 5ms extra", "trailing garbage");
  // Negative event time: rejected at parse with location (FaultPlan::add
  // would throw too, but without naming the line).
  expect_rejects("@-5ms crash 3", "negative duration");
  // Negative node ids used to wrap through strtoul to 4294967293.
  expect_rejects("@10ms crash -3", "bad node id");
  // Node ids past 2^32 used to truncate silently.
  expect_rejects("@10ms crash 4294967296", "node id out of range");
  // Trailing comma in a node list used to be silently dropped.
  expect_rejects("@10ms partition 3,5,", "empty entry in node list");
  expect_rejects("@10ms heal ,3", "empty entry in node list");
  // Non-finite / overflowing durations used to reach UB in the cast.
  expect_rejects("@infs crash 3", "duration out of range");
  expect_rejects("@10ms skew 2 1e300s", "duration out of range");
  expect_rejects("@nans crash 3", "bad number");
  // Negative and out-of-range loss rates.
  expect_rejects("@10ms loss -0.1", "bad loss rate");
  expect_rejects("@10ms loss 1.5", "bad loss rate");
  expect_rejects("@10ms loss nan", "bad loss rate");
}

// A malformed line must reject the WHOLE plan, not apply the events
// before it: parse is all-or-nothing.
TEST(FaultPlan, ParseIsAllOrNothing) {
  EXPECT_THROW((void)FaultPlan::parse("@1ms crash 2\n@2ms crash 3 junk\n"),
               std::invalid_argument);
}

// Negative skew stays legal (clock drift goes both ways), and column
// numbers point at the offending token, not the line start.
TEST(FaultPlan, ParseColumnPointsAtOffendingToken) {
  const FaultPlan ok = FaultPlan::parse("@10ms skew 2 -5ms\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok.events()[0].skew_ns, -5'000'000);
  try {
    (void)FaultPlan::parse("@10ms crash bogus\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // "bogus" starts at column 13 of the line.
    EXPECT_NE(std::string(e.what()).find("col 13"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, ParseSkipsCommentsAndBlankLines) {
  const FaultPlan plan = FaultPlan::parse(
      "# chaos scenario\n"
      "\n"
      "@10ms crash 3\n"
      "  # indented comment\n"
      "@50ms reboot 3\n");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kReboot);
}

TEST(FaultPlan, ChurnIsAPureFunctionOfItsInputs) {
  const net::Tree tree = net::balanced_kary_tree(126, 2);
  FaultPlan::ChurnProfile profile;
  profile.crash_rate = 0.05;
  profile.partition_rate = 0.5;
  profile.loss_spike_rate = 0.3;
  const SimTime start = SimTime::from_ms(100);
  const SimTime end = SimTime::from_ms(2000);

  const FaultPlan a = FaultPlan::churn(7, tree, start, end, profile);
  const FaultPlan b = FaultPlan::churn(7, tree, start, end, profile);
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a.format(), b.format());

  const FaultPlan c = FaultPlan::churn(8, tree, start, end, profile);
  EXPECT_NE(a.format(), c.format()) << "different seed, different plan";
}

TEST(FaultPlan, ChurnRespectsTheWindowAndPairsRecoveries) {
  const net::Tree tree = net::balanced_kary_tree(62, 2);
  FaultPlan::ChurnProfile profile;
  profile.crash_rate = 0.1;
  const SimTime start = SimTime::from_ms(500);
  const SimTime end = SimTime::from_ms(1500);
  const FaultPlan plan = FaultPlan::churn(3, tree, start, end, profile);
  ASSERT_GT(plan.size(), 0u);
  std::uint64_t crashes = 0, reboots = 0;
  for (const FaultEvent& ev : plan.events()) {
    if (ev.kind == FaultKind::kCrash) {
      ++crashes;
      EXPECT_GE(ev.at, start);
      EXPECT_LT(ev.at, end);
      EXPECT_GE(ev.device, 1u);
      EXPECT_LE(ev.device, 62u);
    } else {
      ASSERT_EQ(ev.kind, FaultKind::kReboot);
      ++reboots;
    }
  }
  EXPECT_EQ(crashes, reboots) << "every churn crash schedules its reboot";
}

TEST(FaultPlan, ProcKillGrammarRoundTrip) {
  // proc-kill drives the wire-chaos supervisor: device is a process
  // index (0 = verifier, 1.. = agents), duration the restart downtime.
  FaultPlan plan;
  plan.proc_kill(SimTime::from_ms(100), 0)
      .proc_kill_for(SimTime::from_ms(250), 2, Duration::from_ms(150));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kProcKill);
  EXPECT_EQ(plan.events()[0].device, 0u);
  EXPECT_EQ(plan.events()[0].duration, Duration::zero());
  EXPECT_EQ(plan.events()[1].device, 2u);
  EXPECT_EQ(plan.events()[1].duration, Duration::from_ms(150));
  // Unlike crash_for, proc_kill_for schedules NO recovery event — the
  // supervisor owns the respawn, so the plan stays two events.

  const FaultPlan parsed = FaultPlan::parse(plan.format());
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.events()[i].kind, plan.events()[i].kind) << i;
    EXPECT_EQ(parsed.events()[i].at, plan.events()[i].at) << i;
    EXPECT_EQ(parsed.events()[i].device, plan.events()[i].device) << i;
    EXPECT_EQ(parsed.events()[i].duration, plan.events()[i].duration) << i;
  }
  EXPECT_EQ(parsed.format(), plan.format());

  // Text forms: bare kill and kill-with-downtime.
  const FaultPlan text = FaultPlan::parse(
      "@230ms proc-kill 0 150ms\n@520ms proc-kill 1\n");
  ASSERT_EQ(text.size(), 2u);
  EXPECT_EQ(text.events()[0].kind, FaultKind::kProcKill);
  EXPECT_EQ(text.events()[0].duration, Duration::from_ms(150));
  EXPECT_EQ(text.events()[1].device, 1u);
  EXPECT_EQ(text.events()[1].duration, Duration::zero());
}

TEST(FaultPlan, ProcKillRejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("@10ms proc-kill"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("@10ms proc-kill zero"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("@10ms proc-kill 0 -5ms"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("@10ms proc-kill 0 150ms extra"),
               std::invalid_argument);
  FaultPlan plan;
  EXPECT_THROW(plan.proc_kill_for(SimTime::from_ms(1), 0,
                                  Duration::from_ms(-10)),
               std::invalid_argument);
}

TEST(FaultPlan, ZeroRatesYieldAnEmptyPlan) {
  const net::Tree tree = net::balanced_kary_tree(30, 2);
  FaultPlan::ChurnProfile quiet;
  quiet.crash_rate = 0.0;
  const FaultPlan plan = FaultPlan::churn(
      11, tree, SimTime::zero(), SimTime::from_sec(10), quiet);
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace cra::fault
