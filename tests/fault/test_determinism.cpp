// End-to-end fault-replay determinism: a seeded FaultPlan driven through
// SapSimulation must produce byte-identical metrics on the sequential
// engine and the sharded engine at any thread count, keep the network
// ledger consistent under combined loss + churn, and classify scripted
// faults as the statuses they are (crash -> unreachable, never
// untrusted; crash + reboot inside the window -> rebooted).
#include <gtest/gtest.h>

#include <string>

#include "fault/plan.hpp"
#include "sap/swarm.hpp"
#include "seda/seda.hpp"

namespace cra::sap {
namespace {

using sim::Duration;
using sim::SimTime;

SapConfig adaptive_cfg(std::uint32_t threads, std::uint32_t shards) {
  SapConfig c;
  c.pmem_size = 2 * 1024;
  c.qoa = QoaMode::kIdentify;
  c.adaptive.enabled = true;
  c.sim.threads = threads;
  c.sim.shards = shards;
  return c;
}

fault::FaultPlan::ChurnProfile stormy_profile() {
  fault::FaultPlan::ChurnProfile p;
  p.crash_rate = 0.05;
  p.partition_rate = 0.5;
  p.loss_spike_rate = 0.4;
  p.loss_spike = 0.02;
  return p;
}

/// Three attestation rounds under a seeded churn plan; returns the
/// concatenated per-round metrics JSON (sorted keys, so byte-stable).
std::string churn_campaign(std::uint32_t threads, std::uint32_t shards,
                           double baseline_loss) {
  auto sim = SapSimulation::balanced(adaptive_cfg(threads, shards), 62, 5);
  if (baseline_loss > 0.0) sim.network().set_loss_rate(baseline_loss, 17);
  sim.attach_fault_plan(fault::FaultPlan::churn(
      9, sim.tree(), SimTime::zero(), SimTime::from_sec(20),
      stormy_profile()));
  std::string out;
  for (int round = 0; round < 3; ++round) {
    (void)sim.run_round();
    out += sim.metrics().to_json();
    out += '\n';
    sim.advance_time(Duration::from_ms(100));
  }
  return out;
}

TEST(FaultDeterminism, ByteIdenticalMetricsAcrossThreadCounts) {
  // Fixed shard count, varying worker threads: the run is a pure
  // function of (inputs, shard count), so the JSON must not move by a
  // byte. This is the ISSUE's headline acceptance criterion.
  const std::string t1 = churn_campaign(/*threads=*/1, /*shards=*/4, 0.0);
  const std::string t2 = churn_campaign(/*threads=*/2, /*shards=*/4, 0.0);
  const std::string t8 = churn_campaign(/*threads=*/8, /*shards=*/4, 0.0);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(FaultDeterminism, ChurnActuallyInjectsFaults) {
  // Guard against the determinism test passing vacuously: the same
  // campaign must arm a nonzero number of events and record them in the
  // fault.* counters.
  auto sim = SapSimulation::balanced(adaptive_cfg(1, 4), 62, 5);
  sim.attach_fault_plan(fault::FaultPlan::churn(
      9, sim.tree(), SimTime::zero(), SimTime::from_sec(20),
      stormy_profile()));
  std::uint64_t crashes = 0;
  for (int round = 0; round < 3; ++round) {
    (void)sim.run_round();
    crashes += sim.metrics().counter_value("fault.crashes");
    sim.advance_time(Duration::from_ms(100));
  }
  ASSERT_NE(sim.fault_tally(), nullptr);
  EXPECT_GT(sim.fault_tally()->crashes, 0u);
  EXPECT_GT(crashes, 0u);
}

TEST(FaultDeterminism, LedgerHoldsUnderLossPlusChurnOnBothEngines) {
  // Scripted link outages and loss spikes both charge the dropped
  // ledger; combined with baseline probabilistic loss the accounting
  // invariant sent + dropped == attempted must hold on the classic
  // engine and the sharded engine alike.
  struct EngineCase {
    std::uint32_t threads, shards;
  };
  for (const EngineCase ec : {EngineCase{1, 1}, EngineCase{4, 4}}) {
    auto sim =
        SapSimulation::balanced(adaptive_cfg(ec.threads, ec.shards), 62, 5);
    sim.network().set_loss_rate(0.05, 17);
    sim.attach_fault_plan(fault::FaultPlan::churn(
        9, sim.tree(), SimTime::zero(), SimTime::from_sec(20),
        stormy_profile()));
    for (int round = 0; round < 3; ++round) {
      (void)sim.run_round();
      const obs::MetricsRegistry& m = sim.metrics();
      const std::uint64_t sent = m.counter_value("net.messages_sent");
      const std::uint64_t dropped = m.counter_value("net.messages_dropped");
      const std::uint64_t attempted =
          m.counter_value("net.messages_attempted");
      EXPECT_GT(attempted, 0u);
      EXPECT_EQ(sent + dropped, attempted)
          << "threads=" << ec.threads << " round=" << round;
      sim.advance_time(Duration::from_ms(100));
    }
  }
}

TEST(FaultDeterminism, CrashedDeviceIsUnreachableNeverUntrusted) {
  auto sim = SapSimulation::balanced(adaptive_cfg(1, 1), 30, 3);
  fault::FaultPlan plan;
  plan.crash(SimTime::zero(), 23);  // leaf device, down for the round
  sim.attach_fault_plan(std::move(plan));
  const RoundReport r = sim.run_round();
  ASSERT_TRUE(r.degraded.enabled);
  EXPECT_EQ(r.degraded.untrusted, 0u)
      << "a crash must never read as compromise";
  ASSERT_EQ(r.degraded.unreachable_ids, std::vector<net::NodeId>{23});
  EXPECT_EQ(r.degraded.status[22], Verifier::DeviceStatus::kUnreachable);
  EXPECT_EQ(r.degraded.healthy, 29u);
  EXPECT_FALSE(r.verified) << "all_healthy is false with a device missing";
  EXPECT_NEAR(r.degraded.completion(), 29.0 / 30.0, 1e-12);
}

TEST(FaultDeterminism, CrashedSubtreeRootTakesItsSubtreeOffline) {
  // Position 1's crash silences its whole subtree: the children cannot
  // route reports past the dead forwarder. All of them must surface as
  // unreachable — and none as untrusted.
  auto sim = SapSimulation::balanced(adaptive_cfg(1, 1), 14, 3);
  fault::FaultPlan plan;
  plan.crash(SimTime::zero(), 1);
  sim.attach_fault_plan(std::move(plan));
  const RoundReport r = sim.run_round();
  ASSERT_TRUE(r.degraded.enabled);
  EXPECT_EQ(r.degraded.untrusted, 0u);
  EXPECT_EQ(r.degraded.unreachable_ids,
            (std::vector<net::NodeId>{1, 3, 4, 7, 8, 9, 10}));
}

TEST(FaultDeterminism, RebootInsideTheWindowClassifiesAsRebooted) {
  // Crash before the round, reboot mid-round: the device re-enters via
  // the adaptive re-poll path and reports with the rebooted flag. The
  // verifier distinguishes "restarted" from "healthy all along" and from
  // "compromised".
  auto sim = SapSimulation::balanced(adaptive_cfg(1, 1), 30, 3);
  fault::FaultPlan plan;
  plan.crash_for(SimTime::zero(), 23, Duration::from_ms(120));
  sim.attach_fault_plan(std::move(plan));
  const RoundReport r = sim.run_round();
  ASSERT_TRUE(r.degraded.enabled);
  EXPECT_EQ(r.degraded.untrusted, 0u);
  EXPECT_EQ(r.degraded.rebooted_ids, std::vector<net::NodeId>{23});
  EXPECT_EQ(r.degraded.status[22], Verifier::DeviceStatus::kRebooted);
  EXPECT_FALSE(r.verified) << "rebooted devices are flagged, not trusted";
  EXPECT_NEAR(r.degraded.completion(), 1.0, 1e-12)
      << "the rebooted device did produce evidence";
}

TEST(FaultDeterminism, NoPlanAndDefaultConfigKeepsLegacyBehavior) {
  // The whole subsystem is opt-in: a default-config round with no plan
  // attached reports no degraded block and verifies exactly as before.
  SapConfig c;
  c.pmem_size = 2 * 1024;
  auto sim = SapSimulation::balanced(c, 30, 3);
  EXPECT_FALSE(sim.has_fault_plan());
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.degraded.enabled);
  EXPECT_EQ(r.backoff_wait_ns, 0u);
}

TEST(FaultDeterminism, SedaCrashFailsTheRoundWithoutFalseTrust) {
  // SEDA shares the injector surface: a crashed device's subtree drops
  // out of the aggregate count, which must fail verification — never
  // read as a passing swarm of the wrong size.
  seda::SedaConfig c;
  c.pmem_size = 2 * 1024;
  auto sim = seda::SedaSimulation::balanced(c, 30, 3);
  (void)sim.run_join();
  EXPECT_TRUE(sim.run_round().verified) << "healthy baseline";

  fault::FaultPlan plan;
  plan.crash(sim.current_time(), 23);
  sim.attach_fault_plan(std::move(plan));
  const seda::SedaRoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_LT(r.total, 30u) << "the crashed device is missing, not faked";
  ASSERT_NE(sim.fault_tally(), nullptr);
  EXPECT_EQ(sim.fault_tally()->crashes, 1u);

  // Ledger balances under the scripted fault on SEDA too.
  const obs::MetricsRegistry& m = sim.metrics();
  EXPECT_EQ(m.counter_value("net.messages_sent") +
                m.counter_value("net.messages_dropped"),
            m.counter_value("net.messages_attempted"));
}

TEST(FaultDeterminism, SedaChurnReplayIsByteIdenticalAcrossThreads) {
  const auto campaign = [](std::uint32_t threads) {
    seda::SedaConfig c;
    c.pmem_size = 2 * 1024;
    c.sim.threads = threads;
    c.sim.shards = 4;
    auto sim = seda::SedaSimulation::balanced(c, 62, 5);
    (void)sim.run_join();
    fault::FaultPlan::ChurnProfile p;
    p.crash_rate = 0.05;
    sim.attach_fault_plan(fault::FaultPlan::churn(
        9, sim.tree(), sim.current_time(),
        sim.current_time() + sim::Duration::from_sec(20), p));
    std::string out;
    for (int round = 0; round < 3; ++round) {
      (void)sim.run_round();
      out += sim.metrics().to_json();
      out += '\n';
      sim.advance_time(Duration::from_ms(100));
    }
    return out;
  };
  const std::string t1 = campaign(1);
  EXPECT_EQ(t1, campaign(2));
  EXPECT_EQ(t1, campaign(8));
}

TEST(FaultDeterminism, AttachMidRoundThrows) {
  auto sim = SapSimulation::balanced(adaptive_cfg(1, 1), 14, 3);
  bool threw = false;
  (void)sim.scheduler().schedule_at(sim::SimTime::from_ms(1), [&] {
    try {
      sim.attach_fault_plan(fault::FaultPlan{});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  (void)sim.run_round();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace cra::sap
