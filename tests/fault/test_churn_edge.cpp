// Edge cases of the seeded churn generator and the kLeave/kJoin
// membership events it emits: degenerate rates, zero-downtime
// leave/join collisions on one tick, one-device swarms, and exact
// Poisson replay on both simulation engines.
#include <gtest/gtest.h>

#include <string>

#include "fault/plan.hpp"
#include "net/topology.hpp"
#include "pads/pads.hpp"

namespace cra::fault {
namespace {

using sim::Duration;
using sim::SimTime;

FaultPlan::ChurnProfile zeroed() {
  FaultPlan::ChurnProfile p;
  p.crash_rate = 0.0;  // default is 0.01; null out every channel
  return p;
}

TEST(ChurnEdge, AllZeroRatesProduceAnEmptyPlan) {
  const net::Tree tree = net::balanced_kary_tree(100);
  const FaultPlan plan = FaultPlan::churn(
      7, tree, SimTime::zero(), SimTime::from_sec(30.0), zeroed());
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.format(), "");
}

TEST(ChurnEdge, EmptyWindowProducesAnEmptyPlan) {
  const net::Tree tree = net::balanced_kary_tree(50);
  FaultPlan::ChurnProfile p = zeroed();
  p.leave_rate = 1.0;
  // end == start: zero periods elapse, so even a rate of 1 emits nothing.
  const FaultPlan plan =
      FaultPlan::churn(7, tree, SimTime::from_ms(100), SimTime::from_ms(100), p);
  EXPECT_TRUE(plan.empty());
}

TEST(ChurnEdge, ZeroDowntimeLeaveRejoinsOnTheSameTick) {
  // leave_for with zero absence puts kLeave and kJoin at the same
  // instant; the (time, seq) total order applies the leave first, so the
  // device must end the tick present.
  FaultPlan plan;
  plan.leave_for(SimTime::from_ms(5), 3, Duration::zero());
  ASSERT_EQ(plan.size(), 2u);
  const auto& evs = plan.events();
  EXPECT_EQ(evs[0].kind, FaultKind::kLeave);
  EXPECT_EQ(evs[1].kind, FaultKind::kJoin);
  EXPECT_EQ(evs[0].at, evs[1].at);
  EXPECT_LT(evs[0].seq, evs[1].seq);

  // Format/parse keeps the pair in order (round-trip identity).
  const FaultPlan back = FaultPlan::parse(plan.format());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.events()[0].kind, FaultKind::kLeave);
  EXPECT_EQ(back.events()[1].kind, FaultKind::kJoin);

  // And a live round agrees: the device is present afterwards and the
  // swarm still completes (it may miss this round's evidence window if
  // the flicker lands before its self-attestation — membership is the
  // claim under test, not knowledge).
  pads::PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;
  auto sim = pads::PadsSimulation::balanced(cfg, 10);
  FaultPlan flicker;
  flicker.leave_for(sim.current_time() + Duration::from_ms(1), 3,
                    Duration::zero());
  sim.attach_fault_plan(std::move(flicker));
  const pads::PadsRoundReport r = sim.run_round();
  EXPECT_TRUE(sim.device_present(3));
  EXPECT_EQ(r.present, 10u);
  EXPECT_EQ(r.false_untrusted, 0u);
}

TEST(ChurnEdge, OneDeviceSwarmSurvivesChurn) {
  const net::Tree tree = net::balanced_kary_tree(1);
  FaultPlan::ChurnProfile p = zeroed();
  p.leave_rate = 0.8;
  p.join_rate = 0.5;
  p.crash_rate = 0.3;
  const FaultPlan plan = FaultPlan::churn(
      11, tree, SimTime::zero(), SimTime::from_sec(5.0), p);
  // Every event must target the single device; the verifier position is
  // never churned.
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_EQ(ev.device, 1u) << fault_kind_name(ev.kind);
  }
  pads::PadsConfig cfg;
  cfg.pmem_size = 4 * 1024;
  auto sim = pads::PadsSimulation::balanced(cfg, 1);
  const SimTime t0 = sim.current_time();
  sim.attach_fault_plan(FaultPlan::churn(
      11, sim.tree(), t0, t0 + Duration::from_sec(2.0), p));
  const pads::PadsRoundReport r = sim.run_round();
  EXPECT_EQ(r.devices, 1u);
  EXPECT_EQ(r.false_untrusted, 0u);
  EXPECT_LE(r.present, 1u);
}

TEST(ChurnEdge, PoissonTimelineReplaysExactly) {
  // churn() is a pure function of (seed, tree shape, window, profile):
  // the Poisson arrival counts, victim picks and downtimes must replay
  // bit-identically call after call.
  const net::Tree tree = net::balanced_kary_tree(200);
  FaultPlan::ChurnProfile p = zeroed();
  p.leave_rate = 0.05;
  p.join_rate = 0.02;
  p.crash_rate = 0.01;
  const std::string a =
      FaultPlan::churn(99, tree, SimTime::zero(), SimTime::from_sec(10.0), p)
          .format();
  const std::string b =
      FaultPlan::churn(99, tree, SimTime::zero(), SimTime::from_sec(10.0), p)
          .format();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  const std::string c =
      FaultPlan::churn(100, tree, SimTime::zero(), SimTime::from_sec(10.0), p)
          .format();
  EXPECT_NE(a, c) << "different seed should draw a different timeline";
}

TEST(ChurnEdge, SameChurnPlanIsEngineInvariant) {
  // A Poisson churn timeline replayed through the serial Scheduler and
  // the sharded ParallelScheduler must leave the swarm in a
  // byte-identical state (the PADS round digest covers membership,
  // knowledge and traffic ledgers).
  FaultPlan::ChurnProfile p = zeroed();
  p.leave_rate = 0.1;
  p.join_rate = 0.05;
  p.crash_rate = 0.02;
  auto digest_of = [&](std::uint32_t threads, std::uint32_t shards) {
    pads::PadsConfig cfg;
    cfg.pmem_size = 4 * 1024;
    cfg.sim.threads = threads;
    cfg.sim.shards = shards;
    auto sim = pads::PadsSimulation::balanced(cfg, 60, /*seed=*/21);
    const SimTime t0 = sim.current_time();
    sim.attach_fault_plan(FaultPlan::churn(
        21, sim.tree(), t0, t0 + Duration::from_sec(2.0), p));
    return sim.run_round().digest;
  };
  const std::string serial = digest_of(1, 1);
  EXPECT_EQ(digest_of(1, 4), serial);
  EXPECT_EQ(digest_of(4, 4), serial);
}

}  // namespace
}  // namespace cra::fault
