#include "device/assembler.hpp"

#include <gtest/gtest.h>

#include "device/isa.hpp"

namespace cra::device {
namespace {

std::uint32_t word_at(const Program& p, Addr addr) {
  const std::size_t o = addr - p.base;
  return static_cast<std::uint32_t>(p.image[o]) |
         (static_cast<std::uint32_t>(p.image[o + 1]) << 8) |
         (static_cast<std::uint32_t>(p.image[o + 2]) << 16) |
         (static_cast<std::uint32_t>(p.image[o + 3]) << 24);
}

TEST(Assembler, BasicInstructions) {
  const Program p = assemble("ldi r1, 42\nadd r2, r1, r1\nhalt", 0x400);
  EXPECT_EQ(p.base, 0x400u);
  EXPECT_EQ(p.image.size(), 12u);
  EXPECT_EQ(word_at(p, 0x400), encode_u(Opcode::kLdi, 1, 42));
  EXPECT_EQ(word_at(p, 0x404), encode_r(Opcode::kAdd, 2, 1, 1));
  EXPECT_EQ(word_at(p, 0x408), encode_r(Opcode::kHalt, 0, 0, 0));
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
    ; full-line comment
    nop        ; trailing comment
    # hash comment
    halt
  )", 0);
  EXPECT_EQ(p.image.size(), 8u);
}

TEST(Assembler, LabelsForwardAndBackward) {
  const Program p = assemble(R"(
  start:
    jmp end
    nop
  end:
    jmp start
  )", 0x100);
  EXPECT_EQ(p.labels.at("start"), 0x100u);
  EXPECT_EQ(p.labels.at("end"), 0x108u);
  EXPECT_EQ(word_at(p, 0x100), encode_j(Opcode::kJmp, 0x108));
  EXPECT_EQ(word_at(p, 0x108), encode_j(Opcode::kJmp, 0x100));
}

TEST(Assembler, BranchOffsetsAreRelative) {
  const Program p = assemble(R"(
  loop:
    addi r1, r1, 1
    bne r1, r2, loop
  )", 0x200);
  // bne sits at 0x204, target 0x200, offset -4.
  EXPECT_EQ(word_at(p, 0x204), encode_b(Opcode::kBne, 1, 2, -4));
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble("jr lr\nmov sp, r1", 0);
  EXPECT_EQ(word_at(p, 0), encode_r(Opcode::kJr, 0, kLinkReg));
  EXPECT_EQ(word_at(p, 4), encode_r(Opcode::kMov, 13, 1));
}

TEST(Assembler, DirectivesWordSpaceAscii) {
  const Program p = assemble(R"(
    .word 0xdeadbeef, 7
    .space 8
    .ascii "ok"
  )", 0);
  EXPECT_EQ(p.image.size(), 4u + 4u + 8u + 2u);
  EXPECT_EQ(word_at(p, 0), 0xdeadbeefu);
  EXPECT_EQ(word_at(p, 4), 7u);
  EXPECT_EQ(p.image[16], 'o');
  EXPECT_EQ(p.image[17], 'k');
}

TEST(Assembler, WordDirectiveAcceptsLabels) {
  const Program p = assemble(R"(
    .word target
  target:
    halt
  )", 0x40);
  EXPECT_EQ(word_at(p, 0x40), 0x44u);
}

TEST(Assembler, OrgMovesForwardAndZeroFills) {
  const Program p = assemble(R"(
    nop
    .org 0x20
    halt
  )", 0);
  EXPECT_EQ(p.image.size(), 0x24u);
  EXPECT_EQ(word_at(p, 0x10), 0u);  // gap zero-filled
  EXPECT_EQ(word_at(p, 0x20), encode_r(Opcode::kHalt, 0, 0, 0));
}

TEST(Assembler, OrgBackwardThrows) {
  EXPECT_THROW(assemble("nop\n.org 0x0\nhalt", 0x100), AssemblerError);
}

TEST(Assembler, HexAndNegativeNumbers) {
  const Program p = assemble("ldi r1, 0xff\naddi r2, r1, -1", 0);
  EXPECT_EQ(word_at(p, 0), encode_u(Opcode::kLdi, 1, 0xff));
  EXPECT_EQ(word_at(p, 4), encode_i(Opcode::kAddi, 2, 1, -1));
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1, r2\n", 0);
    FAIL() << "expected AssemblerError";
  } catch (const AssemblerError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, DiagnosesCommonMistakes) {
  EXPECT_THROW(assemble("ldi r99, 1", 0), AssemblerError);   // bad register
  EXPECT_THROW(assemble("add r1, r2", 0), AssemblerError);   // arity
  EXPECT_THROW(assemble("jmp nowhere", 0), AssemblerError);  // undefined
  EXPECT_THROW(assemble("ldi r1, 70000", 0), AssemblerError);  // range
  EXPECT_THROW(assemble("x: nop\nx: nop", 0), AssemblerError);  // dup label
  EXPECT_THROW(assemble(".ascii oops", 0), AssemblerError);  // no string
  EXPECT_THROW(assemble(".ascii \"unterminated", 0), AssemblerError);
}

TEST(Assembler, EmptySourceYieldsEmptyImage) {
  const Program p = assemble("", 0);
  EXPECT_TRUE(p.image.empty());
  EXPECT_TRUE(p.labels.empty());
}

TEST(Assembler, LabelOnOrgLineBindsToNewOrigin) {
  const Program p = assemble(R"(
    nop
  table: .org 0x40
    .word 1
  )", 0);
  EXPECT_EQ(p.labels.at("table"), 0x40u);
}

}  // namespace
}  // namespace cra::device
