#include "device/clock.hpp"

#include <gtest/gtest.h>

namespace cra::device {
namespace {

TEST(SecureClock, PaperParameters) {
  const SecureClock c;  // 24 MHz / 250,000
  EXPECT_NEAR(c.tick_period().ms(), 10.4167, 0.001);
  // "would wrap around in almost 2 years"
  const double years = c.wraparound_seconds() / (365.25 * 24 * 3600);
  EXPECT_NEAR(years, 1.42, 0.05);
  EXPECT_GT(years, 1.0);
}

TEST(SecureClock, ReadAtCycles) {
  const SecureClock c;
  EXPECT_EQ(c.read_at_cycles(0), 0u);
  EXPECT_EQ(c.read_at_cycles(249'999), 0u);
  EXPECT_EQ(c.read_at_cycles(250'000), 1u);
  EXPECT_EQ(c.read_at_cycles(2'500'000), 10u);
}

TEST(SecureClock, ReadAtTimeMatchesCycles) {
  const SecureClock c;
  // 1 second at 24 MHz = 24M cycles = 96 ticks.
  EXPECT_EQ(c.read_at_time(sim::SimTime::from_sec(1.0)), 96u);
  EXPECT_EQ(c.read_at_time(sim::SimTime::zero()), 0u);
}

TEST(SecureClock, SkewShiftsReading) {
  const SecureClock c;
  const auto t = sim::SimTime::from_sec(1.0);
  EXPECT_GT(c.read_at_time(t, sim::Duration::from_ms(50)),
            c.read_at_time(t, sim::Duration::zero()));
  EXPECT_LT(c.read_at_time(t, sim::Duration::from_ms(-50)),
            c.read_at_time(t));
  // Negative effective time clamps to zero.
  EXPECT_EQ(c.read_at_time(sim::SimTime::zero(),
                           sim::Duration::from_sec(-5.0)),
            0u);
}

TEST(SecureClock, TickTimeRoundTrip) {
  const SecureClock c;
  // Reading the clock exactly at a tick's start time yields that tick —
  // the property SAP's synchronous attest depends on.
  for (std::uint32_t tick : {0u, 1u, 7u, 96u, 1000u, 123456u}) {
    EXPECT_EQ(c.read_at_time(c.tick_to_time(tick)), tick) << tick;
  }
}

TEST(SecureClock, TimeToTickCeil) {
  const SecureClock c;
  EXPECT_EQ(c.time_to_tick_ceil(sim::SimTime::zero()), 0u);
  // Any instant strictly inside tick k's interval rounds up to k+1.
  const auto inside = c.tick_to_time(5) + sim::Duration::from_us(1);
  EXPECT_EQ(c.time_to_tick_ceil(inside), 6u);
  // Exactly at the boundary stays at that tick.
  EXPECT_LE(c.time_to_tick_ceil(c.tick_to_time(5)), 5u + 1u);
}

TEST(SecureClock, CeilTickIsNeverInThePast) {
  const SecureClock c;
  for (std::int64_t ns : {1LL, 999'999LL, 10'416'667LL, 123'456'789LL}) {
    const auto t = sim::SimTime::from_ns(ns);
    const std::uint32_t tick = c.time_to_tick_ceil(t);
    EXPECT_GE(c.tick_to_time(tick).ns(), t.ns() - 1) << ns;
  }
}

TEST(SecureClock, CustomRates) {
  const SecureClock fast(48'000'000, 480'000);  // same 10 ms tick
  EXPECT_NEAR(fast.tick_period().ms(), 10.0, 0.001);
  EXPECT_THROW(SecureClock(0, 1), std::invalid_argument);
  EXPECT_THROW(SecureClock(1, 0), std::invalid_argument);
}

TEST(SecureClock, MonotoneInTime) {
  const SecureClock c;
  std::uint32_t last = 0;
  for (int ms = 0; ms < 200; ms += 3) {
    const std::uint32_t now = c.read_at_time(sim::SimTime::from_ms(ms));
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace cra::device
