#include "device/clock.hpp"

#include <gtest/gtest.h>

#include "sap/config.hpp"

namespace cra::device {
namespace {

TEST(SecureClock, PaperParameters) {
  const SecureClock c;  // 24 MHz / 250,000
  EXPECT_NEAR(c.tick_period().ms(), 10.4167, 0.001);
  // "would wrap around in almost 2 years"
  const double years = c.wraparound_seconds() / (365.25 * 24 * 3600);
  EXPECT_NEAR(years, 1.42, 0.05);
  EXPECT_GT(years, 1.0);
}

TEST(SecureClock, ReadAtCycles) {
  const SecureClock c;
  EXPECT_EQ(c.read_at_cycles(0), 0u);
  EXPECT_EQ(c.read_at_cycles(249'999), 0u);
  EXPECT_EQ(c.read_at_cycles(250'000), 1u);
  EXPECT_EQ(c.read_at_cycles(2'500'000), 10u);
}

TEST(SecureClock, ReadAtTimeMatchesCycles) {
  const SecureClock c;
  // 1 second at 24 MHz = 24M cycles = 96 ticks.
  EXPECT_EQ(c.read_at_time(sim::SimTime::from_sec(1.0)), 96u);
  EXPECT_EQ(c.read_at_time(sim::SimTime::zero()), 0u);
}

TEST(SecureClock, SkewShiftsReading) {
  const SecureClock c;
  const auto t = sim::SimTime::from_sec(1.0);
  EXPECT_GT(c.read_at_time(t, sim::Duration::from_ms(50)),
            c.read_at_time(t, sim::Duration::zero()));
  EXPECT_LT(c.read_at_time(t, sim::Duration::from_ms(-50)),
            c.read_at_time(t));
  // Negative effective time clamps to zero.
  EXPECT_EQ(c.read_at_time(sim::SimTime::zero(),
                           sim::Duration::from_sec(-5.0)),
            0u);
}

TEST(SecureClock, TickTimeRoundTrip) {
  const SecureClock c;
  // Reading the clock exactly at a tick's start time yields that tick —
  // the property SAP's synchronous attest depends on.
  for (std::uint32_t tick : {0u, 1u, 7u, 96u, 1000u, 123456u}) {
    EXPECT_EQ(c.read_at_time(c.tick_to_time(tick)), tick) << tick;
  }
}

TEST(SecureClock, TimeToTickCeil) {
  const SecureClock c;
  EXPECT_EQ(c.time_to_tick_ceil(sim::SimTime::zero()), 0u);
  // Any instant strictly inside tick k's interval rounds up to k+1.
  const auto inside = c.tick_to_time(5) + sim::Duration::from_us(1);
  EXPECT_EQ(c.time_to_tick_ceil(inside), 6u);
  // Exactly at the boundary stays at that tick.
  EXPECT_LE(c.time_to_tick_ceil(c.tick_to_time(5)), 5u + 1u);
}

TEST(SecureClock, CeilTickIsNeverInThePast) {
  const SecureClock c;
  for (std::int64_t ns : {1LL, 999'999LL, 10'416'667LL, 123'456'789LL}) {
    const auto t = sim::SimTime::from_ns(ns);
    const std::uint32_t tick = c.time_to_tick_ceil(t);
    EXPECT_GE(c.tick_to_time(tick).ns(), t.ns() - 1) << ns;
  }
}

TEST(SecureClock, CustomRates) {
  const SecureClock fast(48'000'000, 480'000);  // same 10 ms tick
  EXPECT_NEAR(fast.tick_period().ms(), 10.0, 0.001);
  EXPECT_THROW(SecureClock(0, 1), std::invalid_argument);
  EXPECT_THROW(SecureClock(1, 0), std::invalid_argument);
}

// Regression for the second<->tick audit (docs/robustness.md): pin the
// exact tick values second-denominated service knobs resolve to on the
// paper's clock (24 MHz / 250,000 => 96 ticks per second). from_sec's
// old truncation made some of these land one nanosecond early, which
// time_to_tick_ceil then rounded to the same tick only by luck of the
// double grid — pinning the values keeps any future conversion change
// honest.
TEST(SecureClock, SecondDenominatedKnobsPinToExactTicks) {
  const SecureClock c;  // paper defaults
  // ServicePolicy::period default: 2.0 s = exactly 192 ticks.
  EXPECT_EQ(c.time_to_tick_ceil(sim::Duration::from_sec(2.0)), 192u);
  EXPECT_EQ(c.tick_to_time(192).ns(), 2'000'000'000);
  // Round-trip: tick 192's start converts back to the same tick.
  EXPECT_EQ(c.time_to_tick_ceil(c.tick_to_time(192)), 192u);
  // Non-representable seconds: 2.9 s * 96 ticks/s = 278.4 -> ceil 279.
  EXPECT_EQ(c.time_to_tick_ceil(sim::Duration::from_sec(2.9)), 279u);
  // 0.3 s * 96 = 28.8 -> 29; the truncated 299999999 ns gave the same
  // tick, but 1.0 s exactly must give exactly 96, never 97.
  EXPECT_EQ(c.time_to_tick_ceil(sim::Duration::from_sec(0.3)), 29u);
  EXPECT_EQ(c.time_to_tick_ceil(sim::Duration::from_sec(1.0)), 96u);
}

// SAP adaptive timeouts are millisecond-denominated; pin the exact
// backoff ladder and total budget so Duration changes cannot silently
// stretch the verifier's round deadline.
TEST(SecureClock, AdaptiveBackoffLadderIsExact) {
  const sap::AdaptiveTimeoutConfig adaptive;  // defaults: 25ms *2 <= 200ms
  EXPECT_EQ(adaptive.backoff_for(1).ns(), 25'000'000);
  EXPECT_EQ(adaptive.backoff_for(2).ns(), 50'000'000);
  EXPECT_EQ(adaptive.backoff_for(3).ns(), 100'000'000);
  EXPECT_EQ(adaptive.backoff_for(4).ns(), 200'000'000);
  EXPECT_EQ(adaptive.backoff_for(5).ns(), 200'000'000);  // clamped
  EXPECT_EQ(adaptive.budget().ns(), 375'000'000);
  // The budget expressed in ticks of the paper clock: 375 ms = 36 ticks.
  const SecureClock c;
  EXPECT_EQ(c.time_to_tick_ceil(adaptive.budget()), 36u);
}

TEST(SecureClock, MonotoneInTime) {
  const SecureClock c;
  std::uint32_t last = 0;
  for (int ms = 0; ms < 200; ms += 3) {
    const std::uint32_t now = c.read_at_time(sim::SimTime::from_ms(ms));
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace cra::device
