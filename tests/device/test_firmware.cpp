// Nontrivial firmware programs on the machine model — the ISA earning
// its keep beyond the protocol plumbing.
#include <gtest/gtest.h>

#include "device/assembler.hpp"
#include "device/cpu.hpp"

namespace cra::device {
namespace {

struct Machine {
  MemoryLayout layout{256, 4096, 2048, 1024};
  Memory memory{layout};
  Mpu mpu{memory, MpuConfig{}};
  SecureClock clock{};
  Cpu cpu{memory, mpu, clock};

  void run_program(const std::string& source,
                   std::uint64_t budget = 1'000'000) {
    const Program p = assemble(source, layout.pmem_base());
    memory.load(Section::kPmem, p.image);
    cpu.reset(layout.pmem_base());
    ASSERT_EQ(cpu.run(budget), StopReason::kHalted);
  }
};

TEST(Firmware, IterativeFibonacci) {
  Machine m;
  m.run_program(R"(
    ldi r1, 0      ; fib(0)
    ldi r2, 1      ; fib(1)
    ldi r3, 20     ; n
    ldi r4, 0      ; i
  fib:
    add r5, r1, r2
    mov r1, r2
    mov r2, r5
    addi r4, r4, 1
    bne r4, r3, fib
    halt
  )");
  EXPECT_EQ(m.cpu.reg(1), 6765u);  // fib(20)
}

TEST(Firmware, MemcpyRoutine) {
  Machine m;
  const Addr src = m.layout.dmem_base();
  const Addr dst = m.layout.dmem_base() + 256;
  const Bytes payload = to_bytes("copy me through the machine, byte-wise");
  m.memory.write_range(src, payload);
  m.run_program(R"(
    ldi r1, )" + std::to_string(src) + R"(
    ldi r2, )" + std::to_string(dst) + R"(
    ldi r3, )" + std::to_string(payload.size()) + R"(
    ldi r4, 0
  copy:
    ldb r5, r1, 0
    stb r5, r2, 0
    addi r1, r1, 1
    addi r2, r2, 1
    addi r4, r4, 1
    bne r4, r3, copy
    halt
  )");
  EXPECT_EQ(m.memory.read_range(dst,
                                static_cast<std::uint32_t>(payload.size())),
            payload);
}

TEST(Firmware, XorChecksumOverRegion) {
  // The software-only "attestation" a naive deployment might use — and
  // exactly what the toy ISA makes easy to write (and easy to fool).
  Machine m;
  const Addr region = m.layout.dmem_base() + 512;
  Bytes data;
  std::uint32_t expected = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    Bytes word;
    append_u32le(word, i * 2654435761u);
    m.memory.write_range(region + 4 * i, word);
    expected ^= i * 2654435761u;
  }
  (void)data;
  m.run_program(R"(
    ldi r1, )" + std::to_string(region) + R"(
    ldi r2, 64     ; words
    ldi r3, 0      ; acc
    ldi r4, 0      ; i
  sum:
    ldw r5, r1, 0
    xor r3, r3, r5
    addi r1, r1, 4
    addi r4, r4, 1
    bne r4, r2, sum
    halt
  )");
  EXPECT_EQ(m.cpu.reg(3), expected);
}

TEST(Firmware, BubbleSortInMemory) {
  Machine m;
  const Addr arr = m.layout.dmem_base();
  const std::uint32_t values[] = {9, 3, 7, 1, 8, 2, 6};
  for (std::uint32_t i = 0; i < 7; ++i) {
    m.memory.write32(arr + 4 * i, values[i]);
  }
  m.run_program(R"(
    ldi r1, 7            ; n
  outer:
    ldi r2, 0            ; i
    ldi r3, )" + std::to_string(arr) + R"(
    ldi r9, 0            ; swapped flag
  inner:
    ldw r4, r3, 0
    ldw r5, r3, 4
    bltu r4, r5, noswap
    beq r4, r5, noswap
    stw r5, r3, 0
    stw r4, r3, 4
    ldi r9, 1
  noswap:
    addi r3, r3, 4
    addi r2, r2, 1
    ldi r6, 6
    bne r2, r6, inner
    ldi r6, 0
    bne r9, r6, outer
    halt
  )", 100'000);
  for (std::uint32_t i = 0; i + 1 < 7; ++i) {
    EXPECT_LE(m.memory.read32(arr + 4 * i), m.memory.read32(arr + 4 * i + 4));
  }
  EXPECT_EQ(m.memory.read32(arr), 1u);
  EXPECT_EQ(m.memory.read32(arr + 24), 9u);
}

TEST(Firmware, SubroutineCallTree) {
  // double(x) and square(x) composed through the link register with the
  // conventional r13 save.
  Machine m;
  m.run_program(R"(
    ldi r1, 5
    call square_plus_double
    halt
  square_plus_double:
    mov r13, lr
    call square        ; r1 = 25
    call double        ; r1 = 50
    mov lr, r13
    jr lr
  square:
    mul r1, r1, r1
    jr lr
  double:
    add r1, r1, r1
    jr lr
  )");
  EXPECT_EQ(m.cpu.reg(1), 50u);
}

}  // namespace
}  // namespace cra::device
