#include "device/memory.hpp"

#include <gtest/gtest.h>

namespace cra::device {
namespace {

MemoryLayout small_layout() {
  return MemoryLayout{256, 1024, 512, 512};
}

TEST(Memory, LayoutGeometry) {
  const MemoryLayout l = small_layout();
  EXPECT_EQ(l.rom_base(), 0u);
  EXPECT_EQ(l.pmem_base(), 256u);
  EXPECT_EQ(l.dmem_base(), 1280u);
  EXPECT_EQ(l.promem_base(), 1792u);
  EXPECT_EQ(l.total(), 2304u);
}

TEST(Memory, SectionOf) {
  Memory m(small_layout());
  EXPECT_EQ(m.section_of(0), Section::kRom);
  EXPECT_EQ(m.section_of(255), Section::kRom);
  EXPECT_EQ(m.section_of(256), Section::kPmem);
  EXPECT_EQ(m.section_of(1279), Section::kPmem);
  EXPECT_EQ(m.section_of(1280), Section::kDmem);
  EXPECT_EQ(m.section_of(1792), Section::kPromem);
  EXPECT_EQ(m.section_of(2303), Section::kPromem);
  EXPECT_THROW(m.section_of(2304), std::out_of_range);
}

TEST(Memory, SectionRegionsTile) {
  Memory m(small_layout());
  const Region rom = m.section_region(Section::kRom);
  const Region pmem = m.section_region(Section::kPmem);
  const Region dmem = m.section_region(Section::kDmem);
  const Region promem = m.section_region(Section::kPromem);
  EXPECT_EQ(rom.end, pmem.start);
  EXPECT_EQ(pmem.end, dmem.start);
  EXPECT_EQ(dmem.end, promem.start);
  EXPECT_EQ(promem.end, m.layout().total());
}

TEST(Memory, ByteAndWordAccess) {
  Memory m(small_layout());
  m.write8(100, 0xab);
  EXPECT_EQ(m.read8(100), 0xab);
  m.write32(200, 0xdeadbeef);
  EXPECT_EQ(m.read32(200), 0xdeadbeefu);
  // Little-endian byte order.
  EXPECT_EQ(m.read8(200), 0xef);
  EXPECT_EQ(m.read8(203), 0xde);
}

TEST(Memory, ZeroInitialized) {
  Memory m(small_layout());
  EXPECT_EQ(m.read32(0), 0u);
  EXPECT_EQ(m.read8(m.layout().total() - 1), 0u);
}

TEST(Memory, BoundsChecks) {
  Memory m(small_layout());
  EXPECT_THROW(m.read8(2304), std::out_of_range);
  EXPECT_THROW(m.read32(2301), std::out_of_range);
  EXPECT_THROW(m.write32(2301, 0), std::out_of_range);
  EXPECT_THROW(m.read_range(2300, 5), std::out_of_range);
}

TEST(Memory, RangeRoundTrip) {
  Memory m(small_layout());
  const Bytes data = {1, 2, 3, 4, 5};
  m.write_range(300, data);
  EXPECT_EQ(m.read_range(300, 5), data);
}

TEST(Memory, SnapshotAndLoad) {
  Memory m(small_layout());
  Bytes image(100, 0x5a);
  m.load(Section::kPmem, image);
  const Bytes snap = m.snapshot(Section::kPmem);
  EXPECT_EQ(snap.size(), 1024u);
  EXPECT_EQ(snap[0], 0x5a);
  EXPECT_EQ(snap[99], 0x5a);
  EXPECT_EQ(snap[100], 0x00);  // rest of the section untouched
}

TEST(Memory, LoadTooLargeThrows) {
  Memory m(small_layout());
  EXPECT_THROW(m.load(Section::kDmem, Bytes(513, 0)), std::invalid_argument);
}

TEST(Memory, RejectsUnalignedLayout) {
  EXPECT_THROW(Memory(MemoryLayout{10, 1024, 512, 512}),
               std::invalid_argument);
}

TEST(Memory, RegionHelpers) {
  const Region r{100, 200};
  EXPECT_EQ(r.size(), 100u);
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(199));
  EXPECT_FALSE(r.contains(200));
  EXPECT_TRUE(r.contains_range(150, 50));
  EXPECT_FALSE(r.contains_range(150, 51));
  EXPECT_TRUE(r.overlaps(Region{199, 300}));
  EXPECT_FALSE(r.overlaps(Region{200, 300}));
}

}  // namespace
}  // namespace cra::device
