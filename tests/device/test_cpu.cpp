// The fetch-execute interpreter, driven with assembled firmware.
#include "device/cpu.hpp"

#include <gtest/gtest.h>

#include "device/assembler.hpp"

namespace cra::device {
namespace {

struct Machine {
  MemoryLayout layout{256, 2048, 1024, 1024};
  Memory memory{layout};
  Mpu mpu{memory, MpuConfig{}};
  SecureClock clock{24'000'000, 250'000};
  Cpu cpu{memory, mpu, clock};

  /// Assemble `source` into PMEM and point the CPU at it.
  void load_and_start(std::string_view source) {
    const Program p = assemble(source, layout.pmem_base());
    memory.load(Section::kPmem, p.image);
    cpu.reset(layout.pmem_base());
  }

  StopReason run(std::uint64_t cycles = 100'000) { return cpu.run(cycles); }
};

TEST(Cpu, ArithmeticAndLogic) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 7
    ldi r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    and r6, r1, r2
    or  r7, r1, r2
    xor r8, r1, r2
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 10u);
  EXPECT_EQ(m.cpu.reg(4), 4u);
  EXPECT_EQ(m.cpu.reg(5), 21u);
  EXPECT_EQ(m.cpu.reg(6), 3u);
  EXPECT_EQ(m.cpu.reg(7), 7u);
  EXPECT_EQ(m.cpu.reg(8), 4u);
}

TEST(Cpu, ShiftsAndImmediates) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 1
    ldi r2, 12
    shl r3, r1, r2     ; 1 << 12 = 4096
    shr r4, r3, r1     ; 4096 >> 1 = 2048
    addi r5, r4, -48   ; 2000
    lui r6, 0x1234     ; 0x12340000
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 4096u);
  EXPECT_EQ(m.cpu.reg(4), 2048u);
  EXPECT_EQ(m.cpu.reg(5), 2000u);
  EXPECT_EQ(m.cpu.reg(6), 0x12340000u);
}

TEST(Cpu, LoadsAndStores) {
  Machine m;
  const Addr dmem = m.layout.dmem_base();
  m.load_and_start(R"(
    lui r10, )" + std::to_string(dmem >> 16) + R"(
    ldi r9, )" + std::to_string(dmem & 0xffff) + R"(
    or  r10, r10, r9
    ldi r1, 0xbeef
    stw r1, r10, 0
    ldw r2, r10, 0
    stb r1, r10, 8
    ldb r3, r10, 8
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(2), 0xbeefu);
  EXPECT_EQ(m.cpu.reg(3), 0xefu);  // byte store keeps the low byte
  EXPECT_EQ(m.memory.read32(dmem), 0xbeefu);
}

TEST(Cpu, BranchesTakenAndNot) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 5
    ldi r2, 5
    ldi r3, 0
    beq r1, r2, equal
    ldi r3, 99       ; skipped
  equal:
    addi r3, r3, 1
    bne r1, r2, bad
    addi r3, r3, 10
    blt r2, r1, bad  ; 5 < 5 is false
    addi r3, r3, 100
    bge r1, r2, good ; 5 >= 5
    ldi r3, 0
  good:
    halt
  bad:
    ldi r3, 77
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 111u);
}

TEST(Cpu, SignedVsUnsignedComparison) {
  Machine m;
  m.load_and_start(R"(
    ldi  r1, 0
    addi r1, r1, -1   ; r1 = 0xffffffff (signed -1)
    ldi  r2, 1
    ldi  r3, 0
    blt  r1, r2, signed_lt   ; -1 < 1 signed: taken
    jmp  after1
  signed_lt:
    addi r3, r3, 1
  after1:
    bltu r1, r2, bad          ; 0xffffffff < 1 unsigned: not taken
    addi r3, r3, 10
    halt
  bad:
    ldi r3, 99
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(3), 11u);
}

TEST(Cpu, CallAndReturn) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 1
    call sub
    addi r1, r1, 100
    halt
  sub:
    addi r1, r1, 10
    jr lr
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(1), 111u);
}

TEST(Cpu, LoopComputesSum) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 0      ; sum
    ldi r2, 1      ; i
    ldi r3, 11     ; bound
  loop:
    add r1, r1, r2
    addi r2, r2, 1
    bne r2, r3, loop
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(1), 55u);  // 1 + ... + 10
}

TEST(Cpu, CycleCounting) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 1      ; 1 cycle
    add r2, r1, r1 ; 1
    ldw r3, r1, 16 ; 2 (address 17? no: r1=1, offset 16 -> ROM addr 17 read)
    halt           ; 1
  )");
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.cycles(), 5u);
}

TEST(Cpu, RdclkReadsSecureClock) {
  Machine m;
  m.load_and_start(R"(
    rdclk r1
    halt
  )");
  m.cpu.set_clock_base_cycles(250'000 * 7);  // 7 ticks elapsed pre-boot
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(1), 7u);
}

TEST(Cpu, WriteToRomFaults) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 0
    stw r1, r1, 0   ; store to ROM address 0
    halt
  )");
  EXPECT_EQ(m.run(), StopReason::kFaulted);
  ASSERT_TRUE(m.cpu.fault().has_value());
  EXPECT_EQ(m.cpu.fault()->kind, FaultKind::kWriteToRom);
}

TEST(Cpu, IllegalInstructionFaults) {
  Machine m;
  m.load_and_start("nop\nhalt");
  m.memory.write32(m.layout.pmem_base(), 0xfe000000u);  // bogus opcode
  EXPECT_EQ(m.run(), StopReason::kFaulted);
}

TEST(Cpu, CycleBudgetStopsExecution) {
  Machine m;
  m.load_and_start(R"(
  spin:
    jmp spin
  )");
  EXPECT_EQ(m.run(1000), StopReason::kCycleBudget);
  EXPECT_EQ(m.cpu.state(), CpuState::kRunning);
  EXPECT_GE(m.cpu.cycles(), 1000u);
}

TEST(Cpu, InterruptDeliveryAndIret) {
  Machine m;
  const Addr handler_addr = m.layout.pmem_base() + 0x100;
  m.load_and_start(R"(
    ei
    ldi r1, 0
  wait:
    addi r1, r1, 1
    ldi r2, 50
    bne r1, r2, wait
    halt
    .org )" + std::to_string(handler_addr) + R"(
  handler:
    ldi r5, 42
    iret
  )");
  m.cpu.raise_interrupt(handler_addr);
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(5), 42u);  // handler ran
  EXPECT_EQ(m.cpu.reg(1), 50u);  // main loop completed after iret
}

TEST(Cpu, InterruptsMaskedUntilEi) {
  Machine m;
  const Addr handler_addr = m.layout.pmem_base() + 0x100;
  m.load_and_start(R"(
    ldi r1, 1       ; interrupts never enabled
    halt
    .org )" + std::to_string(handler_addr) + R"(
  handler:
    ldi r5, 42
    iret
  )");
  m.cpu.raise_interrupt(handler_addr);
  EXPECT_EQ(m.run(), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(5), 0u);
  EXPECT_EQ(m.cpu.pending_interrupts(), 1u);
}

TEST(Cpu, ResetClearsStatePreservesCycles) {
  Machine m;
  m.load_and_start("ldi r1, 9\nhalt");
  m.run();
  const std::uint64_t cycles = m.cpu.cycles();
  EXPECT_GT(cycles, 0u);
  m.cpu.reset(m.layout.pmem_base());
  EXPECT_EQ(m.cpu.reg(1), 0u);
  EXPECT_EQ(m.cpu.state(), CpuState::kRunning);
  EXPECT_EQ(m.cpu.cycles(), cycles);  // the secure clock never rewinds
}

TEST(Cpu, RegisterIndexValidation) {
  Machine m;
  EXPECT_THROW(m.cpu.reg(16), std::out_of_range);
  EXPECT_THROW(m.cpu.set_reg(16, 0), std::out_of_range);
}

}  // namespace
}  // namespace cra::device
