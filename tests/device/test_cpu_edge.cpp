// CPU interpreter edge semantics: wraparound, masking, faults at the
// boundaries, interrupt/EPC precision.
#include <gtest/gtest.h>

#include "device/assembler.hpp"
#include "device/cpu.hpp"

namespace cra::device {
namespace {

struct Machine {
  MemoryLayout layout{256, 2048, 1024, 1024};
  Memory memory{layout};
  Mpu mpu{memory, MpuConfig{}};
  SecureClock clock{};
  Cpu cpu{memory, mpu, clock};

  void load_and_start(const std::string& source) {
    const Program p = assemble(source, layout.pmem_base());
    memory.load(Section::kPmem, p.image);
    cpu.reset(layout.pmem_base());
  }
};

TEST(CpuEdge, ArithmeticWrapsModulo32) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 0
    addi r1, r1, -1      ; 0xffffffff
    ldi r2, 1
    add r3, r1, r2       ; wraps to 0
    lui r4, 0x8000       ; 0x80000000
    add r5, r4, r4       ; wraps to 0
    mul r6, r1, r1       ; (2^32-1)^2 mod 2^32 = 1
    halt
  )");
  m.cpu.run(100);
  EXPECT_EQ(m.cpu.reg(3), 0u);
  EXPECT_EQ(m.cpu.reg(5), 0u);
  EXPECT_EQ(m.cpu.reg(6), 1u);
}

TEST(CpuEdge, ShiftAmountsMaskedTo5Bits) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 1
    ldi r2, 33          ; shift by 33 == shift by 1
    shl r3, r1, r2
    ldi r4, 32          ; shift by 32 == shift by 0
    shl r5, r1, r4
    halt
  )");
  m.cpu.run(100);
  EXPECT_EQ(m.cpu.reg(3), 2u);
  EXPECT_EQ(m.cpu.reg(5), 1u);
}

TEST(CpuEdge, JrToUnalignedAddressFaults) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 0x102       ; unaligned (and in ROM, but alignment trips first)
    jr r1
  )");
  EXPECT_EQ(m.cpu.run(100), StopReason::kFaulted);
  EXPECT_EQ(m.cpu.fault()->kind, FaultKind::kOutOfBounds);
}

TEST(CpuEdge, LoadBeyondAddressSpaceFaults) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 0
    addi r1, r1, -8     ; address 0xfffffff8
    ldw r2, r1, 0
    halt
  )");
  EXPECT_EQ(m.cpu.run(100), StopReason::kFaulted);
  EXPECT_EQ(m.cpu.fault()->kind, FaultKind::kOutOfBounds);
}

TEST(CpuEdge, FaultPreservesOffendingAddresses) {
  Machine m;
  m.load_and_start(R"(
    ldi r1, 4
    stw r1, r1, 0       ; write to ROM address 4
  )");
  m.cpu.run(100);
  ASSERT_TRUE(m.cpu.fault().has_value());
  EXPECT_EQ(m.cpu.fault()->address, 4u);
  EXPECT_EQ(m.cpu.fault()->pc, m.layout.pmem_base() + 4);
}

TEST(CpuEdge, NestedCallClobbersLinkRegisterByDesign) {
  // Single link register, no stack in hardware: a nested call without a
  // software save loops back into the inner callee's return point.
  Machine m;
  m.load_and_start(R"(
    call outer
    halt
  outer:
    mov r13, lr        ; the software save that makes nesting work
    call inner
    mov lr, r13
    jr lr
  inner:
    addi r1, r1, 1
    jr lr
  )");
  EXPECT_EQ(m.cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(1), 1u);
}

TEST(CpuEdge, InterruptResumesAtExactInstruction) {
  Machine m;
  const Addr handler = m.layout.pmem_base() + 0x100;
  m.load_and_start(R"(
    ei
    ldi r1, 10
    ldi r2, 0
  loop:
    addi r2, r2, 1
    bne r2, r1, loop
    halt
    .org )" + std::to_string(handler) + R"(
  handler:
    addi r5, r5, 1
    iret
  )");
  m.cpu.raise_interrupt(handler);
  m.cpu.raise_interrupt(handler);
  EXPECT_EQ(m.cpu.run(1000), StopReason::kHalted);
  EXPECT_EQ(m.cpu.reg(5), 2u);   // both delivered
  EXPECT_EQ(m.cpu.reg(2), 10u);  // loop unperturbed
}

TEST(CpuEdge, DisabledInterruptsStayQueuedAcrossHalt) {
  Machine m;
  m.load_and_start("halt");
  m.cpu.raise_interrupt(m.layout.pmem_base());
  EXPECT_EQ(m.cpu.run(10), StopReason::kHalted);
  EXPECT_EQ(m.cpu.pending_interrupts(), 1u);
}

TEST(CpuEdge, ByteStoresTouchOnlyOneByte) {
  Machine m;
  const Addr dmem = m.layout.dmem_base();
  m.memory.write32(dmem, 0xaabbccdd);
  m.load_and_start(R"(
    ldi r1, )" + std::to_string(dmem) + R"(
    ldi r2, 0x11
    stb r2, r1, 1
    halt
  )");
  m.cpu.run(100);
  EXPECT_EQ(m.memory.read32(dmem), 0xaabb11ddu);
}

TEST(CpuEdge, RunZeroCyclesDoesNothing) {
  Machine m;
  m.load_and_start("ldi r1, 5\nhalt");
  EXPECT_EQ(m.cpu.run(0), StopReason::kCycleBudget);
  EXPECT_EQ(m.cpu.reg(1), 0u);
}

}  // namespace
}  // namespace cra::device
