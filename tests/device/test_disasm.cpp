// Disassembler, including the assemble∘disassemble round-trip property.
#include "device/disasm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/assembler.hpp"

namespace cra::device {
namespace {

TEST(Disasm, RendersEachFormat) {
  EXPECT_EQ(disassemble(encode_r(Opcode::kNop, 0, 0, 0)), "nop");
  EXPECT_EQ(disassemble(encode_r(Opcode::kHalt, 0, 0, 0)), "halt");
  EXPECT_EQ(disassemble(encode_u(Opcode::kLdi, 1, 42)), "ldi r1, 42");
  EXPECT_EQ(disassemble(encode_u(Opcode::kLui, 2, 0xbeef)),
            "lui r2, 48879");
  EXPECT_EQ(disassemble(encode_r(Opcode::kMov, 3, 4)), "mov r3, r4");
  EXPECT_EQ(disassemble(encode_r(Opcode::kAdd, 1, 2, 3)),
            "add r1, r2, r3");
  EXPECT_EQ(disassemble(encode_i(Opcode::kAddi, 1, 2, -5)),
            "addi r1, r2, -5");
  EXPECT_EQ(disassemble(encode_i(Opcode::kLdw, 1, 2, 8)), "ldw r1, r2, 8");
  EXPECT_EQ(disassemble(encode_b(Opcode::kBeq, 1, 2, -8)),
            "beq r1, r2, -8");
  EXPECT_EQ(disassemble(encode_j(Opcode::kJmp, 0x400)), "jmp 1024");
  EXPECT_EQ(disassemble(encode_j(Opcode::kCall, 0x40)), "call 64");
  EXPECT_EQ(disassemble(encode_r(Opcode::kJr, 0, kLinkReg)), "jr lr");
  EXPECT_EQ(disassemble(encode_u(Opcode::kRdclk, 5, 0)), "rdclk r5");
}

TEST(Disasm, UnknownOpcodeAsRawWord) {
  EXPECT_EQ(disassemble(0xff00beef), ".word 0xff00beef");
}

TEST(Disasm, RoundTripThroughAssembler) {
  // Property: disassembled text re-assembles to the identical word, for
  // every opcode with randomized operands.
  Rng rng(2718);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto op = static_cast<Opcode>(
        rng.next_below(static_cast<std::uint64_t>(Opcode::kMaxOpcode)));
    const auto rd = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    const auto rs1 = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    const auto rs2 = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    std::uint32_t word = 0;
    switch (op) {
      case Opcode::kLdi:
      case Opcode::kLui:
        word = encode_u(op, rd, static_cast<std::uint32_t>(
                                    rng.next_below(0x10000)));
        break;
      case Opcode::kRdclk:
        word = encode_u(op, rd, 0);
        break;
      case Opcode::kAddi:
      case Opcode::kLdb:
      case Opcode::kLdw:
      case Opcode::kStb:
      case Opcode::kStw:
        word = encode_i(op, rd, rs1,
                        static_cast<std::int32_t>(
                            rng.next_range(0, 0xffff)) - 0x8000);
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
        word = encode_b(op, rd, rs1,
                        (static_cast<std::int32_t>(rng.next_below(0x4000)) -
                         0x2000) *
                            4);
        break;
      case Opcode::kJmp:
      case Opcode::kCall:
        word = encode_j(op, static_cast<std::uint32_t>(
                                rng.next_below(0x400000)) *
                                4);
        break;
      case Opcode::kJr:
        word = encode_r(op, 0, rs1);
        break;
      case Opcode::kMov:
        word = encode_r(op, rd, rs1);
        break;
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kEi:
      case Opcode::kDi:
      case Opcode::kIret:
        word = encode_r(op, 0, 0, 0);
        break;
      case Opcode::kMaxOpcode:
        continue;
      default:  // three-register ALU ops
        word = encode_r(op, rd, rs1, rs2);
        break;
    }
    const std::string text = disassemble(word);
    // Branch operands are absolute targets to the assembler, so
    // assemble at address 0: offset == target there.
    const Program p = assemble(text, 0);
    ASSERT_EQ(p.image.size(), 4u) << text;
    const std::uint32_t reassembled =
        static_cast<std::uint32_t>(p.image[0]) |
        (static_cast<std::uint32_t>(p.image[1]) << 8) |
        (static_cast<std::uint32_t>(p.image[2]) << 16) |
        (static_cast<std::uint32_t>(p.image[3]) << 24);
    EXPECT_EQ(reassembled, word) << "text: " << text;
  }
}

TEST(Disasm, RangeAndDump) {
  Memory memory(MemoryLayout{256, 1024, 512, 512});
  const Program p = assemble("ldi r1, 7\nadd r2, r1, r1\nhalt", 256);
  memory.load(Section::kPmem, p.image);
  const auto lines = disassemble_range(memory, 256, 3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "ldi r1, 7");
  EXPECT_EQ(lines[1].text, "add r2, r1, r1");
  EXPECT_EQ(lines[2].text, "halt");
  const std::string dump = dump_range(memory, 256, 3);
  EXPECT_NE(dump.find("0x100: ldi r1, 7"), std::string::npos);
  EXPECT_THROW(disassemble_range(memory, 257, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cra::device
