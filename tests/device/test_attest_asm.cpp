// The interpreted attest TCB: HMAC-SHA1 in machine code, executed
// instruction-by-instruction under full MPU enforcement.
#include "device/attest_asm.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "device/disasm.hpp"

namespace cra::device {
namespace {

Bytes test_key() { return Bytes(20, 0x51); }

std::unique_ptr<Device> make_device(std::uint32_t pmem_size = 4 * 1024) {
  auto d = std::make_unique<Device>(11, interpreted_attest_config(pmem_size),
                                    test_key(), Bytes(20, 0x52));
  d->load_firmware(to_bytes("interpreted-TCB firmware image"));
  install_interpreted_attest(*d);
  EXPECT_TRUE(d->boot());
  return d;
}

/// Verifier-side expectation.
Bytes expected_token(const Device& d, std::uint32_t chal) {
  Bytes msg = d.expected_pmem();
  append_u32le(msg, chal);
  return crypto::hmac(crypto::HashAlg::kSha1, test_key(), msg);
}

TEST(InterpretedAttest, TokenMatchesSoftwareHmac) {
  auto d = make_device();
  d->sync_clock(d->clock().tick_to_time(6));
  d->invoke_attest(6);
  EXPECT_EQ(d->read_token(), expected_token(*d, 6));
}

TEST(InterpretedAttest, MatchesNativeRoutineBitForBit) {
  // Same device geometry, same key, same firmware: the interpreted TCB
  // and the native TCB must produce identical tokens.
  auto interpreted = make_device();
  auto native = std::make_unique<Device>(11, interpreted_attest_config(),
                                         test_key(), Bytes(20, 0x52));
  native->load_firmware(to_bytes("interpreted-TCB firmware image"));
  native->provision();
  ASSERT_TRUE(native->boot());

  interpreted->sync_clock(interpreted->clock().tick_to_time(9));
  native->sync_clock(native->clock().tick_to_time(9));
  interpreted->invoke_attest(9);
  native->invoke_attest(9);
  EXPECT_EQ(interpreted->read_token(), native->read_token());
  EXPECT_FALSE(all_zero(interpreted->read_token()));
}

TEST(InterpretedAttest, WrongClockYieldsZeroToken) {
  auto d = make_device();
  d->sync_clock(d->clock().tick_to_time(3));
  d->invoke_attest(8);  // chal says 8, clock says 3
  EXPECT_TRUE(all_zero(d->read_token()));
}

TEST(InterpretedAttest, DetectsInfection) {
  auto d = make_device();
  const Bytes clean = expected_token(*d, 5);
  d->adv_infect_pmem(100, to_bytes("implant"));
  d->sync_clock(d->clock().tick_to_time(5));
  d->invoke_attest(5);
  EXPECT_NE(d->read_token(), clean);
  // And it equals the HMAC over the *actual* (infected) PMEM.
  EXPECT_EQ(d->read_token(), expected_token(*d, 5));
}

TEST(InterpretedAttest, TokenBoundToChallenge) {
  auto d = make_device();
  d->sync_clock(d->clock().tick_to_time(4));
  d->invoke_attest(4);
  const Bytes t4 = d->read_token();
  d->sync_clock(d->clock().tick_to_time(7));
  d->invoke_attest(7);
  EXPECT_NE(d->read_token(), t4);
}

TEST(InterpretedAttest, LargerPmemStillCorrect) {
  auto d = make_device(16 * 1024);
  d->sync_clock(d->clock().tick_to_time(2));
  d->invoke_attest(2);
  EXPECT_EQ(d->read_token(), expected_token(*d, 2));
}

TEST(InterpretedAttest, MeasuredCyclesAreRealNotModel) {
  auto d = make_device();
  d->sync_clock(d->clock().tick_to_time(2));
  const std::uint64_t cycles = d->invoke_attest(2);
  // The interpreted HMAC-SHA1 measures ~5.4k cycles per compression
  // block on this clean RISC — about 2.7x faster than the 14,400/block
  // the analytic model charges for the paper's (unoptimized, MPU-heavy)
  // TrustLite implementation. Both are "real"; the model keeps the
  // paper's calibration, the interpreter reports its own truth.
  const std::uint64_t analytic = d->attest_cost_cycles();
  EXPECT_GT(cycles, analytic / 5);
  EXPECT_LT(cycles, analytic);
}

TEST(InterpretedAttest, SecureBootMeasuresTheRealCode) {
  auto d = make_device();
  ASSERT_TRUE(d->boot());
  // Flip one instruction bit behind the MPU's back (offline attack):
  // Secure Boot refuses to start the device.
  const Addr mid = d->mpu().attest_code().start + 200;
  d->memory().write8(mid,
                     static_cast<std::uint8_t>(d->memory().read8(mid) ^ 1));
  EXPECT_FALSE(d->boot());
}

TEST(InterpretedAttest, RuntimePatchStillBlockedByEq15) {
  auto d = make_device();
  EXPECT_TRUE(d->adv_try_patch_attest(Bytes(8, 0)).has_value());
}

TEST(InterpretedAttest, KeyStillUnreadableFromOutside) {
  auto d = make_device();
  Bytes leaked;
  const auto fault = d->adv_try_read_key(&leaked);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kKeyReadOutsideAttest);
}

TEST(InterpretedAttest, JumpIntoMiddleFaults) {
  auto d = make_device();
  const Addr pmem = d->config().layout.pmem_base();
  d->memory().write32(pmem,
                      encode_j(Opcode::kJmp, d->attest_entry() + 64));
  d->cpu().reset(pmem);
  EXPECT_EQ(d->cpu().run(100), StopReason::kFaulted);
  EXPECT_EQ(d->cpu().fault()->kind, FaultKind::kBadAttestEntry);
}

TEST(InterpretedAttest, InterruptDuringAttestIsDeferredPerCycle) {
  // Eq. 20, exercised on real fetches: software enables interrupts, the
  // TCB runs, an interrupt raised mid-attest is vetoed on every cycle
  // while PC is in r4, then delivered right after the exit.
  auto d = make_device();
  d->sync_clock(d->clock().tick_to_time(3));
  d->write_chal(3);

  // Caller stub in DMEM (executable, not attested): ei; call attest;
  // halt. Interrupt handler: ldi r7, 77; halt.
  const Addr stub = d->config().layout.dmem_base() + 0x100;
  const Addr handler = d->config().layout.dmem_base() + 0x200;
  d->memory().write32(stub + 0, encode_r(Opcode::kEi, 0, 0, 0));
  d->memory().write32(stub + 4, encode_j(Opcode::kCall, d->attest_entry()));
  d->memory().write32(stub + 8, encode_r(Opcode::kHalt, 0, 0, 0));
  d->memory().write32(handler + 0, encode_u(Opcode::kLdi, 7, 77));
  d->memory().write32(handler + 4, encode_r(Opcode::kHalt, 0, 0, 0));

  d->cpu().set_pc(stub);
  // Run into the TCB, then inject the interrupt mid-attest.
  d->cpu().run(5'000);
  ASSERT_TRUE(d->mpu().attest_code().contains(d->cpu().pc()));
  const std::uint64_t deferred_before = d->cpu().deferred_interrupts();
  d->adv_raise_interrupt(handler);
  const StopReason r = d->cpu().run(d->attest_cost_cycles());
  EXPECT_EQ(r, StopReason::kHalted);
  // The veto fired on (many) in-attest cycles...
  EXPECT_GT(d->cpu().deferred_interrupts(), deferred_before);
  // ...the handler ran only after the TCB exited...
  EXPECT_EQ(d->cpu().reg(7), 77u);
  // ...and the measurement was not perturbed.
  EXPECT_EQ(d->read_token(), expected_token(*d, 3));
}

TEST(InterpretedAttest, GeneratedSourceAssemblesToFixedRegion) {
  const DeviceConfig cfg = interpreted_attest_config();
  const Program p = assemble_interpreted_attest(cfg);
  EXPECT_EQ(p.image.size(), cfg.attest_code_size);
  EXPECT_EQ(p.base, cfg.layout.promem_base() + cfg.attest_code_offset);
  // The last word is the architectural exit `jr lr`.
  const std::size_t last = p.image.size() - 4;
  const std::uint32_t word =
      static_cast<std::uint32_t>(p.image[last]) |
      (static_cast<std::uint32_t>(p.image[last + 1]) << 8) |
      (static_cast<std::uint32_t>(p.image[last + 2]) << 16) |
      (static_cast<std::uint32_t>(p.image[last + 3]) << 24);
  EXPECT_EQ(disassemble(word), "jr lr");
}

TEST(InterpretedAttest, RejectsUnsupportedGeometry) {
  DeviceConfig bad = interpreted_attest_config();
  bad.layout.pmem_size = 1000;  // not a block multiple... and unaligned
  EXPECT_THROW(generate_attest_asm(bad), std::invalid_argument);
  DeviceConfig sha256 = interpreted_attest_config();
  sha256.attest.alg = crypto::HashAlg::kSha256;
  EXPECT_THROW(generate_attest_asm(sha256), std::invalid_argument);
  DeviceConfig tiny = interpreted_attest_config();
  tiny.attest_scratch_size = 256;
  EXPECT_THROW(generate_attest_asm(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace cra::device
