// Device-local adversary attacks against the attest TCB — the §VI-C
// attacks (a), (b), (c) — on the real machine model, plus the
// rule-ablation experiments showing each MPU rule is necessary.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "device/device.hpp"

namespace cra::device {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.layout = MemoryLayout{256, 4096, 1024, 4096};
  return cfg;
}

Bytes test_key() { return Bytes(20, 0x33); }

std::unique_ptr<Device> make_device(DeviceConfig cfg = small_config()) {
  auto d = std::make_unique<Device>(9, cfg, test_key(), Bytes(20, 0x44));
  d->provision();
  d->boot();
  return d;
}

// --- Attack (a): learning K_{mi,Vrf} ---

TEST(AttackKeyExtraction, BlockedByEq17) {
  auto dp = make_device();
  Device& d = *dp;
  Bytes leaked;
  const auto fault = d.adv_try_read_key(&leaked);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kKeyReadOutsideAttest);
  EXPECT_TRUE(leaked.empty());
}

TEST(AttackKeyExtraction, SucceedsWithoutEq17) {
  DeviceConfig cfg = small_config();
  cfg.mpu.enforce_key_access = false;  // broken platform
  auto dp = make_device(cfg);
  Device& d = *dp;
  Bytes leaked;
  EXPECT_FALSE(d.adv_try_read_key(&leaked).has_value());
  EXPECT_EQ(leaked, test_key());  // key exfiltrated: Adv forges at will
}

TEST(AttackKeyExtraction, MachineCodeReadFaults) {
  // The same attack as actual executing malware: an LDW targeting r6
  // from PMEM-resident code traps the machine.
  auto dp = make_device();
  Device& d = *dp;
  const Region key = d.key_region();
  const Addr pmem = d.config().layout.pmem_base();
  d.memory().write32(pmem + 0, encode_u(Opcode::kLui, 1, key.start >> 16));
  d.memory().write32(pmem + 4, encode_u(Opcode::kLdi, 2, key.start & 0xffff));
  d.memory().write32(pmem + 8, encode_r(Opcode::kOr, 1, 1, 2));
  d.memory().write32(pmem + 12, encode_i(Opcode::kLdw, 3, 1, 0));
  d.memory().write32(pmem + 16, encode_r(Opcode::kHalt, 0, 0, 0));
  d.cpu().reset(pmem);
  EXPECT_EQ(d.cpu().run(100), StopReason::kFaulted);
  EXPECT_EQ(d.cpu().fault()->kind, FaultKind::kKeyReadOutsideAttest);
}

TEST(AttackTcbPatching, BlockedByEq15) {
  auto dp = make_device();
  Device& d = *dp;
  const auto fault = d.adv_try_patch_attest(Bytes(16, 0x90));
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kWriteToAttestCode);
}

TEST(AttackTcbPatching, SucceedsWithoutEq15) {
  DeviceConfig cfg = small_config();
  cfg.mpu.enforce_immutability = false;
  auto dp = make_device(cfg);
  Device& d = *dp;
  EXPECT_FALSE(d.adv_try_patch_attest(Bytes(16, 0x90)).has_value());
  // And Secure Boot catches it at the next reboot even on this platform.
  EXPECT_FALSE(d.boot());
}

// --- Attack (b): violating temporal consistency via interrupts ---

TEST(AttackInterruptAttest, ControlledEntryBlocksMidAttestVector) {
  auto dp = make_device();
  Device& d = *dp;
  const Addr mid_attest = d.attest_entry() + 8;
  // Enable interrupts in a tiny PMEM program, then observe the trap on
  // dispatch: the vector aims inside r4 which Eq. 18 forbids.
  const Addr pmem = d.config().layout.pmem_base();
  d.memory().write32(pmem + 0, encode_r(Opcode::kEi, 0, 0, 0));
  d.memory().write32(pmem + 4, encode_r(Opcode::kNop, 0, 0, 0));
  d.memory().write32(pmem + 8, encode_r(Opcode::kHalt, 0, 0, 0));
  d.cpu().reset(pmem);
  d.adv_raise_interrupt(mid_attest);  // after reset: the queue survives
  EXPECT_EQ(d.cpu().run(100), StopReason::kFaulted);
  EXPECT_EQ(d.cpu().fault()->kind, FaultKind::kBadAttestEntry);
}

TEST(AttackJumpIntoAttestMiddle, BlockedByEq18) {
  auto dp = make_device();
  Device& d = *dp;
  const Addr pmem = d.config().layout.pmem_base();
  // JMP into the middle of r4, skipping the clock check.
  d.memory().write32(pmem, encode_j(Opcode::kJmp, d.attest_entry() + 12));
  d.cpu().reset(pmem);
  EXPECT_EQ(d.cpu().run(100), StopReason::kFaulted);
  EXPECT_EQ(d.cpu().fault()->kind, FaultKind::kBadAttestEntry);
}

// --- Attack (c): clock tampering ---

TEST(AttackClockTamper, ReadOnlyClockIgnoresWrites) {
  auto dp = make_device();
  Device& d = *dp;
  d.sync_clock(d.clock().tick_to_time(3));
  EXPECT_FALSE(d.adv_try_set_clock(100));  // hardware refuses
  EXPECT_EQ(d.clock_ticks(), 3u);
}

TEST(AttackClockTamper, WinsOnBrokenPlatform) {
  // Ablation: a platform with a software-writable clock lets Adv attest
  // "early" — run attest while PMEM is still clean for a future chal,
  // then infect. The stale-but-valid token now covers for the malware.
  DeviceConfig cfg = small_config();
  cfg.clock_writable = true;
  auto dp = make_device(cfg);
  Device& d = *dp;
  d.load_firmware(to_bytes("benign"));
  d.provision();
  ASSERT_TRUE(d.boot());

  const std::uint32_t future_chal = 50;
  ASSERT_TRUE(d.adv_try_set_clock(future_chal));  // attack (c)
  d.invoke_attest(future_chal);
  const Bytes precomputed = d.read_token();

  // Verifier-side expectation for chal=50 over the *clean* PMEM:
  Bytes msg = d.expected_pmem();
  append_u32le(msg, future_chal);
  const Bytes expected =
      crypto::hmac(d.config().attest.alg, test_key(), msg);
  EXPECT_EQ(precomputed, expected);  // Adv holds a valid future token
  // ... so after infection it can answer chal=50 despite being dirty.
  d.adv_infect_pmem(0, to_bytes("evil"));
  EXPECT_EQ(precomputed, expected);
}

// --- Uninterruptibility (Eq. 20) under the native TCB ---

TEST(AttestAtomicity, InterruptDuringAttestIsDeferred) {
  auto dp = make_device();
  Device& d = *dp;
  d.sync_clock(d.clock().tick_to_time(2));
  // Queue an interrupt; attest runs atomically, so the request can only
  // be delivered before or after — never during — the measurement.
  d.adv_raise_interrupt(d.config().layout.rom_base());
  d.invoke_attest(2);
  // The token is exactly the clean HMAC: nothing perturbed the snapshot.
  Bytes msg = d.expected_pmem();
  append_u32le(msg, 2);
  EXPECT_EQ(d.read_token(),
            crypto::hmac(d.config().attest.alg, test_key(), msg));
}

}  // namespace
}  // namespace cra::device
