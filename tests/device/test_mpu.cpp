// The execution-aware MPU: one test per access-control rule
// (Equations 15-20) plus the per-rule ablation switches.
#include "device/mpu.hpp"

#include <gtest/gtest.h>

namespace cra::device {
namespace {

struct Fixture {
  MemoryLayout layout{256, 1024, 512, 1024};
  Memory memory{layout};
  Region code;     // r4
  Region key;      // r6
  Region scratch;

  Mpu make(MpuConfig config = {}) {
    Mpu mpu(memory, config);
    const Addr base = layout.promem_base();
    code = Region{base, base + 256};
    key = Region{base + 256, base + 276};  // 20-byte key
    scratch = Region{base + 512, base + 768};
    mpu.set_attest_regions(code, key);
    mpu.set_attest_scratch(scratch);
    return mpu;
  }

  Addr pmem_pc() const { return layout.pmem_base(); }
  Addr attest_pc() const { return code.start + 8; }
};

TEST(Mpu, Eq15AttestCodeImmutable) {
  Fixture f;
  Mpu mpu = f.make();
  const auto fault =
      mpu.check_data(Access::kWrite, f.code.start + 4, 4, f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kWriteToAttestCode);
  // Even attest itself cannot rewrite its own code.
  const auto self_fault =
      mpu.check_data(Access::kWrite, f.code.start + 4, 4, f.attest_pc());
  ASSERT_TRUE(self_fault.has_value());
  EXPECT_EQ(self_fault->kind, FaultKind::kWriteToAttestCode);
}

TEST(Mpu, Eq16KeyImmutable) {
  Fixture f;
  Mpu mpu = f.make();
  for (Addr pc : {f.pmem_pc(), f.attest_pc()}) {
    const auto fault = mpu.check_data(Access::kWrite, f.key.start, 4, pc);
    ASSERT_TRUE(fault.has_value()) << "pc=" << pc;
    EXPECT_EQ(fault->kind, FaultKind::kWriteToKey);
  }
}

TEST(Mpu, Eq17KeyReadableOnlyFromAttest) {
  Fixture f;
  Mpu mpu = f.make();
  // From outside r4: violation.
  const auto fault =
      mpu.check_data(Access::kRead, f.key.start, f.key.size(), f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kKeyReadOutsideAttest);
  // From inside r4: allowed.
  EXPECT_FALSE(mpu.check_data(Access::kRead, f.key.start, f.key.size(),
                              f.attest_pc())
                   .has_value());
}

TEST(Mpu, Eq17PartialOverlapAlsoCaught) {
  Fixture f;
  Mpu mpu = f.make();
  // A read that straddles the key region's first byte.
  const auto fault =
      mpu.check_data(Access::kRead, f.key.start - 2, 4, f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kKeyReadOutsideAttest);
}

TEST(Mpu, Eq18EntryOnlyAtFirstInstruction) {
  Fixture f;
  Mpu mpu = f.make();
  // Jump into the middle of attest: blocked.
  const auto fault = mpu.check_transfer(f.pmem_pc(), f.code.start + 8);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kBadAttestEntry);
  // Entry at first(r4): allowed.
  EXPECT_FALSE(mpu.check_transfer(f.pmem_pc(), f.code.start).has_value());
  // Transfers wholly inside r4 are fine.
  EXPECT_FALSE(
      mpu.check_transfer(f.code.start, f.code.start + 8).has_value());
}

TEST(Mpu, Eq19ExitOnlyFromLastInstruction) {
  Fixture f;
  Mpu mpu = f.make();
  const auto fault = mpu.check_transfer(f.code.start + 8, f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kBadAttestExit);
  EXPECT_FALSE(
      mpu.check_transfer(mpu.attest_exit(), f.pmem_pc()).has_value());
}

TEST(Mpu, Eq20NoInterruptsInsideAttest) {
  Fixture f;
  Mpu mpu = f.make();
  EXPECT_FALSE(mpu.interrupts_allowed(f.attest_pc()));
  EXPECT_FALSE(mpu.interrupts_allowed(mpu.attest_entry()));
  EXPECT_FALSE(mpu.interrupts_allowed(mpu.attest_exit()));
  EXPECT_TRUE(mpu.interrupts_allowed(f.pmem_pc()));
}

TEST(Mpu, RomNeverWritable) {
  Fixture f;
  Mpu mpu = f.make();
  const auto fault = mpu.check_data(Access::kWrite, 0, 4, f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kWriteToRom);
}

TEST(Mpu, PmemWritableByDefault) {
  Fixture f;
  Mpu mpu = f.make();
  EXPECT_FALSE(mpu.check_data(Access::kWrite, f.layout.pmem_base(), 4,
                              f.pmem_pc())
                   .has_value());
}

TEST(Mpu, PmemLockdownOption) {
  Fixture f;
  MpuConfig config;
  config.pmem_writable = false;
  Mpu mpu = f.make(config);
  EXPECT_TRUE(mpu.check_data(Access::kWrite, f.layout.pmem_base(), 4,
                             f.pmem_pc())
                  .has_value());
}

TEST(Mpu, ScratchOnlyUsableFromAttest) {
  Fixture f;
  Mpu mpu = f.make();
  EXPECT_FALSE(mpu.check_data(Access::kWrite, f.scratch.start, 16,
                              f.attest_pc())
                   .has_value());
  EXPECT_FALSE(mpu.check_data(Access::kRead, f.scratch.start, 16,
                              f.attest_pc())
                   .has_value());
  EXPECT_TRUE(mpu.check_data(Access::kWrite, f.scratch.start, 16,
                             f.pmem_pc())
                  .has_value());
  EXPECT_TRUE(mpu.check_data(Access::kRead, f.scratch.start, 16,
                             f.pmem_pc())
                  .has_value());
}

TEST(Mpu, UnregisteredPromemInaccessible) {
  Fixture f;
  Mpu mpu = f.make();
  const Addr hole = f.layout.promem_base() + 900;
  EXPECT_TRUE(
      mpu.check_data(Access::kRead, hole, 4, f.attest_pc()).has_value());
  EXPECT_TRUE(
      mpu.check_data(Access::kWrite, hole, 4, f.pmem_pc()).has_value());
}

TEST(Mpu, FetchPermissions) {
  Fixture f;
  Mpu mpu = f.make();
  EXPECT_FALSE(mpu.check_fetch(0).has_value());                  // ROM
  EXPECT_FALSE(mpu.check_fetch(f.pmem_pc()).has_value());        // PMEM
  EXPECT_FALSE(mpu.check_fetch(f.layout.dmem_base()).has_value());  // DMEM
  EXPECT_FALSE(mpu.check_fetch(f.code.start).has_value());       // r4
  // ProMEM outside r4 is never executable.
  const auto fault = mpu.check_fetch(f.key.start & ~3u);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kNoExecute);
}

TEST(Mpu, DmemNxOption) {
  Fixture f;
  MpuConfig config;
  config.dmem_executable = false;
  Mpu mpu = f.make(config);
  const auto fault = mpu.check_fetch(f.layout.dmem_base());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kNoExecute);
}

TEST(Mpu, UnalignedOrOutOfRangeFetch) {
  Fixture f;
  Mpu mpu = f.make();
  EXPECT_TRUE(mpu.check_fetch(2).has_value());  // unaligned
  EXPECT_TRUE(mpu.check_fetch(f.layout.total()).has_value());
}

TEST(Mpu, OutOfBoundsData) {
  Fixture f;
  Mpu mpu = f.make();
  const auto fault =
      mpu.check_data(Access::kRead, f.layout.total(), 4, f.pmem_pc());
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kOutOfBounds);
}

// --- Rule ablations: each disabled rule admits exactly its attack ---

TEST(MpuAblation, ImmutabilityOff) {
  Fixture f;
  MpuConfig config;
  config.enforce_immutability = false;
  Mpu mpu = f.make(config);
  EXPECT_FALSE(mpu.check_data(Access::kWrite, f.code.start, 4, f.pmem_pc())
                   .has_value());
  EXPECT_FALSE(mpu.check_data(Access::kWrite, f.key.start, 4, f.pmem_pc())
                   .has_value());
}

TEST(MpuAblation, KeyAccessOff) {
  Fixture f;
  MpuConfig config;
  config.enforce_key_access = false;
  Mpu mpu = f.make(config);
  EXPECT_FALSE(mpu.check_data(Access::kRead, f.key.start, f.key.size(),
                              f.pmem_pc())
                   .has_value());
}

TEST(MpuAblation, ControlledInvocationOff) {
  Fixture f;
  MpuConfig config;
  config.enforce_controlled_invocation = false;
  Mpu mpu = f.make(config);
  EXPECT_FALSE(
      mpu.check_transfer(f.pmem_pc(), f.code.start + 8).has_value());
  EXPECT_FALSE(
      mpu.check_transfer(f.code.start + 8, f.pmem_pc()).has_value());
}

TEST(MpuAblation, NoInterruptOff) {
  Fixture f;
  MpuConfig config;
  config.enforce_no_interrupt = false;
  Mpu mpu = f.make(config);
  EXPECT_TRUE(mpu.interrupts_allowed(f.attest_pc()));
}

TEST(Mpu, RejectsRegionsOutsideProMem) {
  Fixture f;
  Mpu mpu(f.memory, MpuConfig{});
  EXPECT_THROW(mpu.set_attest_regions(Region{0, 64}, Region{64, 84}),
               std::invalid_argument);
}

TEST(Mpu, RejectsOverlappingCodeAndKey) {
  Fixture f;
  Mpu mpu(f.memory, MpuConfig{});
  const Addr base = f.layout.promem_base();
  EXPECT_THROW(
      mpu.set_attest_regions(Region{base, base + 64},
                             Region{base + 32, base + 52}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cra::device
