// DMA vs temporal consistency (§V-C guarantee (b)).
//
// The TCA model forbids DMA precisely because a second memory master
// can rewrite PMEM *while attest is hashing it*. These tests mount the
// full TOCTOU evasion against the interpreted HMAC-SHA1 TCB and show
// the DMA-arbiter guard ("no DMA writes while PC is in r4") is exactly
// the rule that kills it.
#include "device/dma.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "device/attest_asm.hpp"

namespace cra::device {
namespace {

constexpr std::uint32_t kPmem = 4 * 1024;

Bytes test_key() { return Bytes(20, 0x61); }

struct Rig {
  std::unique_ptr<Device> dev;
  std::unique_ptr<DmaController> dma;
  Bytes clean_pmem;
  std::uint32_t tail_offset = kPmem - 64;  // hashed last
  Bytes malware = to_bytes("TOCTOU-RESIDENT-IMPLANT");

  explicit Rig(bool guard) {
    dev = std::make_unique<Device>(21, interpreted_attest_config(kPmem),
                                   test_key(), Bytes(20, 0x62));
    // Real runnable firmware: an idle loop, so cpu().run() can burn
    // arbitrary cycles (which is what drives the DMA controller).
    const Program idle = assemble("idle: addi r1, r1, 1\njmp idle",
                                  dev->config().layout.pmem_base());
    dev->load_firmware(idle.image);
    install_interpreted_attest(*dev);
    EXPECT_TRUE(dev->boot());
    clean_pmem = dev->expected_pmem();

    dma = std::make_unique<DmaController>(dev->memory(), dev->mpu(), guard);
    dev->cpu().set_peripheral(
        [this](Cpu& cpu) { dma->tick(cpu); });
  }

  Bytes clean_expectation(std::uint32_t chal) const {
    Bytes msg = clean_pmem;
    append_u32le(msg, chal);
    return crypto::hmac(crypto::HashAlg::kSha1, test_key(), msg);
  }

  Bytes clean_tail() const {
    return Bytes(clean_pmem.begin() + tail_offset,
                 clean_pmem.begin() + tail_offset + 64);
  }

  Addr tail_addr() const {
    return dev->config().layout.pmem_base() + tail_offset;
  }
};

TEST(Dma, BasicTransferCompletes) {
  Rig rig(/*guard=*/true);
  const Addr dmem = rig.dev->config().layout.dmem_base();
  rig.dma->queue_write(dmem + 256, to_bytes("dma!"),
                       rig.dev->cpu().cycles() + 10);
  // Run some benign code so the peripheral gets pumped.
  rig.dev->cpu().set_pc(rig.dev->config().layout.pmem_base());
  rig.dev->cpu().run(100);
  EXPECT_EQ(rig.dma->completed(), 1u);
  EXPECT_EQ(rig.dev->memory().read_range(dmem + 256, 4), to_bytes("dma!"));
}

TEST(Dma, NotDueTransfersWait) {
  Rig rig(true);
  rig.dma->queue_write(rig.dev->config().layout.dmem_base(), Bytes{1},
                       rig.dev->cpu().cycles() + 1'000'000);
  rig.dev->cpu().set_pc(rig.dev->config().layout.pmem_base());
  rig.dev->cpu().run(100);
  EXPECT_EQ(rig.dma->pending(), 1u);
  EXPECT_EQ(rig.dma->completed(), 0u);
}

TEST(Dma, ToctouEvasionWinsOnUnguardedPlatform) {
  Rig rig(/*guard=*/false);
  Device& d = *rig.dev;

  // Malware is resident in the tail block at t = chal...
  d.adv_infect_pmem(rig.tail_offset, rig.malware);
  ASSERT_NE(d.expected_pmem(), rig.clean_pmem);

  // ...but it has armed two DMA bursts: one that restores the clean
  // bytes shortly after attest enters (long before the hash pointer
  // reaches the tail), and one that re-plants the implant after attest
  // is over.
  const std::uint64_t entry_cycles = d.cpu().cycles();
  rig.dma->queue_write(rig.tail_addr(), rig.clean_tail(),
                       entry_cycles + 5'000);
  Bytes implant(rig.malware);
  rig.dma->queue_write(rig.tail_addr(), implant, entry_cycles + 2'000'000);

  d.sync_clock(d.clock().tick_to_time(4));
  d.invoke_attest(4);

  // The token matches the CLEAN configuration: verification would pass.
  EXPECT_EQ(d.read_token(), rig.clean_expectation(4));
  // Let the re-plant burst land (the CPU halted after the trampoline;
  // restart it into the idle loop — the cycle counter is preserved).
  d.cpu().reset(d.config().layout.pmem_base());
  d.cpu().run(2'500'000);
  EXPECT_EQ(d.memory().read_range(rig.tail_addr(),
                                  static_cast<std::uint32_t>(
                                      rig.malware.size())),
            rig.malware);
  // Adv won: dirty at t = chal, dirty after, token says clean.
}

TEST(Dma, ArbiterGuardDefeatsTheEvasion) {
  Rig rig(/*guard=*/true);
  Device& d = *rig.dev;

  d.adv_infect_pmem(rig.tail_offset, rig.malware);
  const std::uint64_t entry_cycles = d.cpu().cycles();
  rig.dma->queue_write(rig.tail_addr(), rig.clean_tail(),
                       entry_cycles + 5'000);

  d.sync_clock(d.clock().tick_to_time(4));
  d.invoke_attest(4);

  // The transfer was due mid-attest but the arbiter stalled it; the
  // hash saw the implant.
  EXPECT_GT(rig.dma->stalled(), 0u);
  EXPECT_NE(d.read_token(), rig.clean_expectation(4));

  // Once attest exited, the stalled transfer completes normally — the
  // guard delays DMA, it doesn't break it.
  d.cpu().reset(d.config().layout.pmem_base());
  d.cpu().run(200);
  EXPECT_EQ(rig.dma->completed(), 1u);
  EXPECT_EQ(d.memory().read_range(rig.tail_addr(), 64), rig.clean_tail());
}

TEST(Dma, GuardIsInertOutsideAttest) {
  // The rule constrains nothing when the TCB is not running.
  Rig rig(true);
  rig.dma->queue_write(rig.dev->config().layout.dmem_base() + 64,
                       to_bytes("xy"), rig.dev->cpu().cycles() + 5);
  rig.dev->cpu().set_pc(rig.dev->config().layout.pmem_base());
  rig.dev->cpu().run(50);
  EXPECT_EQ(rig.dma->stalled(), 0u);
  EXPECT_EQ(rig.dma->completed(), 1u);
}

}  // namespace
}  // namespace cra::device
