#include "device/isa.hpp"

#include <gtest/gtest.h>

namespace cra::device {
namespace {

TEST(Isa, EncodeDecodeRType) {
  const std::uint32_t word = encode_r(Opcode::kAdd, 3, 4, 5);
  const auto ins = decode(word);
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->op, Opcode::kAdd);
  EXPECT_EQ(ins->rd, 3);
  EXPECT_EQ(ins->rs1, 4);
  EXPECT_EQ(ins->rs2, 5);
}

TEST(Isa, EncodeDecodeITypeSignExtension) {
  const auto pos = decode(encode_i(Opcode::kAddi, 1, 2, 1000));
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->imm, 1000);
  const auto neg = decode(encode_i(Opcode::kAddi, 1, 2, -4));
  ASSERT_TRUE(neg.has_value());
  EXPECT_EQ(neg->imm, -4);
  const auto min = decode(encode_i(Opcode::kLdw, 1, 2, -32768));
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->imm, -32768);
}

TEST(Isa, EncodeDecodeUType) {
  const auto ins = decode(encode_u(Opcode::kLdi, 7, 0xbeef));
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->rd, 7);
  EXPECT_EQ(static_cast<std::uint32_t>(ins->imm) & 0xffffu, 0xbeefu);
}

TEST(Isa, EncodeDecodeBType) {
  const auto ins = decode(encode_b(Opcode::kBeq, 1, 2, -8));
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->op, Opcode::kBeq);
  EXPECT_EQ(ins->rd, 1);   // B-type rs1 lands in the rd field
  EXPECT_EQ(ins->rs1, 2);  // B-type rs2 lands in the rs1 field
  EXPECT_EQ(ins->imm, -8);
}

TEST(Isa, EncodeDecodeJType) {
  const auto ins = decode(encode_j(Opcode::kJmp, 0x00ABCD4));
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->target, 0x00ABCD4u);
}

TEST(Isa, EncoderRangeChecks) {
  EXPECT_THROW(encode_r(Opcode::kAdd, 16, 0, 0), std::invalid_argument);
  EXPECT_THROW(encode_i(Opcode::kAddi, 0, 0, 40000), std::invalid_argument);
  EXPECT_THROW(encode_u(Opcode::kLdi, 0, 0x10000), std::invalid_argument);
  EXPECT_THROW(encode_b(Opcode::kBeq, 0, 0, 6), std::invalid_argument);
  EXPECT_THROW(encode_b(Opcode::kBeq, 0, 0, 40000), std::invalid_argument);
  EXPECT_THROW(encode_j(Opcode::kJmp, 0x1000001), std::invalid_argument);
  EXPECT_THROW(encode_j(Opcode::kJmp, 0x6), std::invalid_argument);
}

TEST(Isa, DecodeRejectsUnknownOpcode) {
  EXPECT_FALSE(decode(0xff000000u).has_value());
  EXPECT_FALSE(
      decode(static_cast<std::uint32_t>(Opcode::kMaxOpcode) << 24)
          .has_value());
}

TEST(Isa, OpcodeNamesAndCycles) {
  EXPECT_STREQ(opcode_name(Opcode::kAdd), "add");
  EXPECT_STREQ(opcode_name(Opcode::kRdclk), "rdclk");
  EXPECT_EQ(opcode_cycles(Opcode::kAdd), 1u);
  EXPECT_EQ(opcode_cycles(Opcode::kLdw), 2u);
  EXPECT_EQ(opcode_cycles(Opcode::kMul), 3u);
  EXPECT_EQ(opcode_cycles(Opcode::kJmp), 2u);
}

}  // namespace
}  // namespace cra::device
