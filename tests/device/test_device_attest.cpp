// The Device facade end-to-end: secure boot, attest TCB correctness
// (token matches the verifier-side HMAC), temporal semantics.
#include "device/device.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "device/assembler.hpp"

namespace cra::device {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.layout = MemoryLayout{256, 4096, 1024, 4096};
  return cfg;
}

Bytes test_key() { return Bytes(20, 0x11); }
Bytes test_kplat() { return Bytes(20, 0x22); }

std::unique_ptr<Device> make_device(DeviceConfig cfg = small_config()) {
  return std::make_unique<Device>(7, cfg, test_key(), test_kplat());
}

/// What the verifier would compute for this device's PMEM.
Bytes expected_token(const Device& d, std::uint32_t chal) {
  Bytes msg = d.expected_pmem();
  append_u32le(msg, chal);
  return crypto::hmac(d.config().attest.alg, test_key(), msg);
}

TEST(DeviceAttest, TokenMatchesVerifierComputation) {
  auto dp = make_device();
  Device& d = *dp;
  d.load_firmware(to_bytes("benign firmware image"));
  d.provision();
  ASSERT_TRUE(d.boot());

  const std::uint32_t chal = 5;
  d.sync_clock(d.clock().tick_to_time(chal));
  d.invoke_attest(chal);
  EXPECT_EQ(d.read_token(), expected_token(d, chal));
}

TEST(DeviceAttest, WrongTimeYieldsZeroToken) {
  auto dp = make_device();
  Device& d = *dp;
  d.provision();
  ASSERT_TRUE(d.boot());
  // Clock says tick 3, challenge says tick 9: attest refuses.
  d.sync_clock(d.clock().tick_to_time(3));
  d.invoke_attest(9);
  EXPECT_TRUE(all_zero(d.read_token()));
}

TEST(DeviceAttest, InfectedPmemYieldsDifferentToken) {
  auto dp = make_device();
  Device& d = *dp;
  d.load_firmware(to_bytes("benign firmware image"));
  d.provision();
  ASSERT_TRUE(d.boot());
  const Bytes clean = expected_token(d, 4);

  d.adv_infect_pmem(0, to_bytes("MALWARE"));
  d.sync_clock(d.clock().tick_to_time(4));
  d.invoke_attest(4);
  EXPECT_NE(d.read_token(), clean);
  EXPECT_FALSE(all_zero(d.read_token()));  // it attested — just "wrong"
}

TEST(DeviceAttest, MalwareRelocationToDmemStillDetectedAtTatt) {
  // Malware copies itself to DMEM and wipes its PMEM home. PMEM at
  // t_att is all-zero there — which differs from cfg_i, so the token
  // still mismatches the verifier's expectation. Evasion by relocation
  // changes *how* PMEM is wrong, not *whether*.
  auto dp = make_device();
  Device& d = *dp;
  d.load_firmware(to_bytes("benign firmware image"));
  d.provision();
  ASSERT_TRUE(d.boot());
  const Bytes clean = expected_token(d, 6);

  d.adv_infect_pmem(0, to_bytes("MALWARE"));
  d.adv_relocate_to_dmem(0, 7, 64);
  d.sync_clock(d.clock().tick_to_time(6));
  d.invoke_attest(6);
  EXPECT_NE(d.read_token(), clean);
}

TEST(DeviceAttest, TokenBoundToChallenge) {
  auto dp = make_device();
  Device& d = *dp;
  d.provision();
  ASSERT_TRUE(d.boot());
  d.sync_clock(d.clock().tick_to_time(5));
  d.invoke_attest(5);
  const Bytes t5 = d.read_token();
  d.sync_clock(d.clock().tick_to_time(8));
  d.invoke_attest(8);
  const Bytes t8 = d.read_token();
  EXPECT_NE(t5, t8);  // chal is folded into the HMAC: no replay value
}

TEST(DeviceAttest, CycleCostMatchesAnalyticModel) {
  auto dp = make_device();
  Device& d = *dp;
  d.provision();
  ASSERT_TRUE(d.boot());
  d.sync_clock(d.clock().tick_to_time(2));
  const std::uint64_t used = d.invoke_attest(2);
  const std::uint64_t analytic = d.attest_cost_cycles();
  // The trampoline adds a handful of cycles around the TCB itself.
  EXPECT_GE(used, analytic);
  EXPECT_LE(used, analytic + 50);
}

TEST(DeviceAttest, AttestTimeAt24MhzIsHalfSecondFor50KB) {
  // The paper-scale device: 50 KB PMEM at 24 MHz — the measurement
  // phase Figure 3(b) shows as the constant ~0.5 s component.
  DeviceConfig cfg;  // default layout: 50 KB PMEM
  Device d(1, cfg, test_key(), test_kplat());
  const double sec = d.attest_cost_time().sec();
  EXPECT_GT(sec, 0.4);
  EXPECT_LT(sec, 0.55);
}

TEST(SecureBootFlow, TamperedTcbRefusesBoot) {
  auto dp = make_device();
  Device& d = *dp;
  d.provision();
  ASSERT_TRUE(d.boot());
  // Flip one byte of ROM (boot code) behind Secure Boot's back — models
  // an offline/physical modification of the TCB.
  d.memory().write8(4, static_cast<std::uint8_t>(d.memory().read8(4) ^ 1));
  EXPECT_FALSE(d.boot());
}

TEST(SecureBootFlow, FirmwareChangesDoNotBlockBoot) {
  // Secure Boot measures the TCB (ROM + r4 + r6), not application PMEM:
  // malware in PMEM is attest's job to catch, not boot's.
  auto dp = make_device();
  Device& d = *dp;
  d.load_firmware(to_bytes("v1 firmware"));
  d.provision();
  ASSERT_TRUE(d.boot());
  d.adv_infect_pmem(0, to_bytes("evil"));
  EXPECT_TRUE(d.boot());
}

TEST(DeviceAttest, FirmwareCanInvokeAttestViaTrampoline) {
  // Run actual firmware on the VM that requests attestation through the
  // ROM trampoline ABI: write chal to the mailbox, call the trampoline.
  DeviceConfig cfg = small_config();
  Device d(3, cfg, test_key(), test_kplat());
  const auto mb = d.mailboxes();

  const std::string source = R"(
    ; write chal = 5 into the mailbox
    lui r10, )" + std::to_string(mb.chal >> 16) + R"(
    ldi r9, )" + std::to_string(mb.chal & 0xffff) + R"(
    or  r10, r10, r9
    ldi r1, 5
    stw r1, r10, 0
    call attest
    halt
    .org )" + std::to_string(cfg.layout.pmem_base() + 0x200) + R"(
  attest: .word 0
  )";
  // Patch: the `call` needs the real attest entry; assemble with a label
  // bound via .org is clumsy here, so encode the call directly below.
  Program p = assemble(source, cfg.layout.pmem_base());
  d.load_firmware(p.image);
  // Replace the placeholder call (6th word) with call <attest entry>.
  d.memory().write32(cfg.layout.pmem_base() + 5 * 4,
                     encode_j(Opcode::kCall, d.attest_entry()));
  d.provision();
  ASSERT_TRUE(d.boot());

  d.sync_clock(d.clock().tick_to_time(5));
  const StopReason r = d.cpu().run(d.attest_cost_cycles() + 10'000);
  EXPECT_EQ(r, StopReason::kHalted);
  EXPECT_EQ(d.read_token(), expected_token(d, 5));
}

}  // namespace
}  // namespace cra::device
