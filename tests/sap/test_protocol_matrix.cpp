// Property sweep: the protocol invariants must hold across the whole
// configuration grid — swarm size × tree arity × hash algorithm × QoA.
//
// Invariants per cell:
//   1. an honest round verifies (TCA-Soundness);
//   2. a round with one random compromised device fails (TCA-Security's
//      detection direction);
//   3. chal reaches every device before t_att (Equation 9);
//   4. U_CA equals the closed form (Lemma 2) in fixed-size-report modes;
//   5. phases tile the round exactly.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

using MatrixParam =
    std::tuple<std::uint32_t /*devices*/, std::uint32_t /*arity*/,
               crypto::HashAlg, QoaMode>;

class ProtocolMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  SapConfig make_config() const {
    SapConfig cfg;
    cfg.pmem_size = 2 * 1024;  // fast cells; the model is unchanged
    cfg.tree_arity = std::get<1>(GetParam());
    cfg.alg = std::get<2>(GetParam());
    cfg.qoa = std::get<3>(GetParam());
    return cfg;
  }
  std::uint32_t devices() const { return std::get<0>(GetParam()); }
};

TEST_P(ProtocolMatrix, HonestRoundVerifies) {
  const SapConfig cfg = make_config();
  auto sim = SapSimulation::balanced(cfg, devices(), /*seed=*/77);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_LE(r.inbound_end.ns(), r.t_att.ns());  // Eq. 9
  EXPECT_EQ(r.inbound().ns() + r.slack().ns() + r.measurement().ns() +
                r.outbound().ns(),
            r.total().ns());
  if (cfg.qoa != QoaMode::kIdentify) {
    const std::uint64_t per_link =
        cfg.chal_size() + cfg.token_size() +
        (cfg.qoa == QoaMode::kCount ? 4 : 0);
    EXPECT_EQ(r.u_ca_bytes, per_link * devices());  // Lemma 2
  }
}

TEST_P(ProtocolMatrix, SingleCompromiseDetected) {
  const SapConfig cfg = make_config();
  auto sim = SapSimulation::balanced(cfg, devices(), /*seed=*/78);
  Rng rng(static_cast<std::uint64_t>(devices()) * 31 +
          std::get<1>(GetParam()));
  const auto victim =
      static_cast<net::NodeId>(1 + rng.next_below(devices()));
  sim.compromise_device(victim);
  EXPECT_FALSE(sim.run_round().verified) << "victim=" << victim;
}

std::string matrix_name(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [n, arity, alg, qoa] = info.param;
  std::string name = "N" + std::to_string(n) + "k" + std::to_string(arity);
  name += alg == crypto::HashAlg::kSha1 ? "sha1" : "sha256";
  name += qoa_name(qoa);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolMatrix,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 7u, 33u, 128u),
        ::testing::Values(2u, 3u, 5u),
        ::testing::Values(crypto::HashAlg::kSha1, crypto::HashAlg::kSha256),
        ::testing::Values(QoaMode::kBinary, QoaMode::kCount,
                          QoaMode::kIdentify)),
    matrix_name);

}  // namespace
}  // namespace cra::sap
