// Observability guarantees of the protocol simulations: the merged
// MetricsRegistry a round reports must be (a) independent of the worker
// thread count, (b) consistent with the network's ledgers under loss on
// both engines, and (c) the same source the RoundReport fields are
// filled from.
#include <gtest/gtest.h>

#include <string>

#include "sap/swarm.hpp"
#include "seda/seda.hpp"

namespace cra {
namespace {

sap::SapConfig small_config() {
  sap::SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

std::string run_and_export(sap::SapConfig cfg, std::uint32_t devices,
                           double loss) {
  auto sim = sap::SapSimulation::balanced(cfg, devices, /*seed=*/5);
  if (loss > 0.0) sim.network().set_loss_rate(loss, /*seed=*/23);
  sim.network().enable_per_link_accounting(true);
  (void)sim.run_round();
  return sim.metrics().to_json();
}

TEST(SapMetrics, ThreadCountDoesNotChangeTheExport) {
  // Same shard count, different worker counts: the merged registry must
  // be byte-identical — even under loss (per-shard RNG substreams are a
  // function of the shard index, not the thread schedule).
  sap::SapConfig cfg = small_config();
  cfg.sim.shards = 4;
  cfg.sim.threads = 1;
  const std::string one = run_and_export(cfg, 254, 0.05);
  cfg.sim.threads = 2;
  const std::string two = run_and_export(cfg, 254, 0.05);
  cfg.sim.threads = 4;
  const std::string four = run_and_export(cfg, 254, 0.05);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(SapMetrics, SerialAndShardedAgreeWithoutLoss) {
  // With no loss the event stream itself is engine-independent, so the
  // classic engine and any sharding must export identical metrics.
  sap::SapConfig cfg = small_config();
  const std::string serial = run_and_export(cfg, 126, 0.0);
  cfg.sim.threads = 8;  // shards=0 -> 8 shards
  const std::string sharded = run_and_export(cfg, 126, 0.0);
  EXPECT_EQ(serial, sharded);
}

TEST(SapMetrics, ReportFieldsComeFromTheRegistry) {
  sap::SapConfig cfg = small_config();
  auto sim = sap::SapSimulation::balanced(cfg, 62);
  const auto r = sim.run_round();
  const auto& m = sim.metrics();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.u_ca_bytes, m.counter_value("net.bytes_transmitted"));
  EXPECT_EQ(r.messages, m.counter_value("net.messages_sent"));
  EXPECT_EQ(r.dropped, m.counter_value("net.messages_dropped"));
  EXPECT_EQ(r.repolls, m.counter_value("sap.repolls"));
  EXPECT_EQ(r.inbound_end.ns(), m.gauge_value("sap.inbound_end_ns"));
  const obs::Histogram* h = m.find_histogram("net.payload_bytes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), m.counter_value("net.messages_attempted"));
}

class SapLedgerInvariants : public ::testing::TestWithParam<bool> {};

TEST_P(SapLedgerInvariants, HoldUnderLossOnBothEngines) {
  sap::SapConfig cfg = small_config();
  cfg.retransmit = true;
  cfg.max_retries = 3;
  if (GetParam()) {
    cfg.sim.threads = 2;
    cfg.sim.shards = 4;
  }
  auto sim = sap::SapSimulation::balanced(cfg, 254, /*seed=*/17);
  sim.network().set_loss_rate(0.02, /*seed=*/17);
  sim.network().enable_per_link_accounting(true);
  for (int round = 0; round < 3; ++round) {
    (void)sim.run_round();
    const auto& m = sim.metrics();
    // (1) the per-link ledger and the total agree even though messages
    // were dropped mid-round (run_round also asserts this internally).
    EXPECT_EQ(m.counter_value("net.per_link_bytes"),
              m.counter_value("net.bytes_transmitted"));
    // (2) every attempt lands in exactly one ledger.
    EXPECT_EQ(m.counter_value("net.messages_sent") +
                  m.counter_value("net.messages_dropped"),
              m.counter_value("net.messages_attempted"));
    EXPECT_GT(m.counter_value("net.messages_dropped"), 0u);
    sim.advance_time(sim::Duration::from_ms(50));
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, SapLedgerInvariants,
                         ::testing::Values(false, true));

TEST(SapMetrics, RegistryResetsEachRound) {
  sap::SapConfig cfg = small_config();
  auto sim = sap::SapSimulation::balanced(cfg, 62);
  const auto r1 = sim.run_round();
  const std::uint64_t bytes1 =
      sim.metrics().counter_value("net.bytes_transmitted");
  sim.advance_time(sim::Duration::from_ms(10));
  const auto r2 = sim.run_round();
  const std::uint64_t bytes2 =
      sim.metrics().counter_value("net.bytes_transmitted");
  EXPECT_EQ(bytes1, r1.u_ca_bytes);
  EXPECT_EQ(bytes2, r2.u_ca_bytes);
  EXPECT_EQ(bytes1, bytes2);  // per-round, not cumulative
}

TEST(SedaMetrics, JoinAndRoundCountersMatchReports) {
  seda::SedaConfig cfg;
  cfg.pmem_size = 4 * 1024;
  auto sim = seda::SedaSimulation::balanced(cfg, 30);
  const auto join = sim.run_join();
  EXPECT_TRUE(join.complete);
  EXPECT_EQ(sim.metrics().counter_value("seda.join_acks"), 30u);
  EXPECT_EQ(join.bytes,
            sim.metrics().counter_value("net.bytes_transmitted"));

  sim.corrupt_join_key(3);  // reports from 3's subtree now fail MACs
  const auto round = sim.run_round();
  EXPECT_FALSE(round.verified);
  EXPECT_GT(round.mac_failures, 0u);
  EXPECT_EQ(round.mac_failures,
            sim.metrics().counter_value("seda.mac_failures"));
  EXPECT_EQ(round.u_ca_bytes,
            sim.metrics().counter_value("net.bytes_transmitted"));
}

TEST(SedaMetrics, ThreadCountDoesNotChangeTheExport) {
  seda::SedaConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.sim.shards = 4;
  std::string exports[2];
  for (int i = 0; i < 2; ++i) {
    cfg.sim.threads = i == 0 ? 1 : 4;
    auto sim = seda::SedaSimulation::balanced(cfg, 126, /*seed=*/3);
    sim.network().enable_per_link_accounting(true);
    (void)sim.run_join();
    (void)sim.run_round();
    exports[i] = sim.metrics().to_json();
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(SapMetrics, PerLinkAccountingWorksOnTheShardedEngine) {
  // Regression: per-link accounting used to throw on the sharded engine;
  // sender-side charging makes the shard maps disjoint, so it now works.
  sap::SapConfig cfg = small_config();
  cfg.sim.threads = 4;
  auto sim = sap::SapSimulation::balanced(cfg, 126);
  sim.network().enable_per_link_accounting(true);
  const auto r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(sim.metrics().counter_value("net.per_link_bytes"), r.u_ca_bytes);
}

}  // namespace
}  // namespace cra
