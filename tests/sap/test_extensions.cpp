// §VIII extensions: authenticated requests (DoS mitigation) and lossy
// networks with retransmission.
#include <gtest/gtest.h>

#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig base_config() {
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

// --- Authenticated requests ---

TEST(AuthRequests, HonestRoundStillVerifies) {
  SapConfig cfg = base_config();
  cfg.authenticate_requests = true;
  auto sim = SapSimulation::balanced(cfg, 30);
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(AuthRequests, SpoofedChalTickIsDropped) {
  // Adv rewrites the tick inside flying challenges. With authentication
  // the devices drop the forgery — they never attest the wrong tick, so
  // the Adv cannot even force wasted measurements with bogus times; the
  // subtree simply never hears a (valid) challenge this round.
  SapConfig cfg = base_config();
  cfg.authenticate_requests = true;
  auto sim = SapSimulation::balanced(cfg, 14);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == kChalMsg && m.dst == 3) {
          Bytes evil = m.payload;
          evil[0] = static_cast<std::uint8_t>(evil[0] + 1);  // tick += 1
          return {net::TamperAction::kDeliverModified, std::move(evil)};
        }
        return {};
      });
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);  // subtree of 3 never participated
}

TEST(AuthRequests, WithoutAuthSpoofedTickCausesWastedAttest) {
  // Same attack without authentication: device 3 *does* attest, against
  // a tick its clock will never match -> zero token, verification fails
  // but the measurement energy was burned (the DoS the extension stops).
  SapConfig cfg = base_config();
  cfg.authenticate_requests = false;
  auto sim = SapSimulation::balanced(cfg, 14);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == kChalMsg && m.dst == 3) {
          Bytes evil = m.payload;
          evil[0] = static_cast<std::uint8_t>(evil[0] + 1);
          return {net::TamperAction::kDeliverModified, std::move(evil)};
        }
        return {};
      });
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(AuthRequests, ForgedWholeChallengeRejected) {
  SapConfig cfg = base_config();
  cfg.authenticate_requests = true;
  auto sim = SapSimulation::balanced(cfg, 6);
  sim.network().set_tamper_hook(
      [&](const net::Message& m) -> net::TamperResult {
        if (m.kind == kChalMsg) {
          // Total forgery: attacker-controlled payload of the right size.
          return {net::TamperAction::kDeliverModified,
                  Bytes(m.payload.size(), 0x66)};
        }
        return {};
      });
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  // Nobody attested anything: every device dropped the forgery at the
  // first hop, so no tokens flowed at all (only chal bytes on links from
  // the root's perspective... the root got no reports before deadline).
  EXPECT_EQ(r.responded, 0u);
}

// --- Lossy networks ---

TEST(LossyNetwork, LossBreaksPlainRound) {
  SapConfig cfg = base_config();
  auto sim = SapSimulation::balanced(cfg, 126);
  sim.network().set_loss_rate(0.10, /*seed=*/5);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);  // ~25 of 252 messages vanish
  EXPECT_GT(r.dropped, 0u);
}

TEST(LossyNetwork, RetransmissionRecoversModerateLoss) {
  SapConfig cfg = base_config();
  cfg.retransmit = true;
  cfg.max_retries = 3;
  cfg.qoa = QoaMode::kCount;
  auto sim = SapSimulation::balanced(cfg, 30);
  // Loss only on report traffic (chal flooding is already redundant in
  // time; sustained chal loss needs chal-side retry, which §VIII leaves
  // open). 5% report loss is recoverable via repoll.
  std::uint64_t rng_state = 42;
  sim.network().set_tamper_hook(
      [&rng_state](const net::Message& m) -> net::TamperResult {
        if (m.kind != kTokenMsg) return {};
        rng_state = rng_state * 6364136223846793005ULL + 1442695040888963407ULL;
        if ((rng_state >> 33) % 100 < 5) {
          return {net::TamperAction::kDrop, {}};
        }
        return {};
      });
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.repolls, 0u);  // recovery actually happened
}

TEST(LossyNetwork, RetransmissionGivesUpAfterMaxRetries) {
  SapConfig cfg = base_config();
  cfg.retransmit = true;
  cfg.max_retries = 2;
  auto sim = SapSimulation::balanced(cfg, 30);
  sim.set_device_unresponsive(30, true);  // no retry can resurrect it
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_GT(r.repolls, 0u);
}

TEST(LossyNetwork, ZeroLossWithRetransmitIsFreeOfRepolls) {
  SapConfig cfg = base_config();
  cfg.retransmit = true;
  auto sim = SapSimulation::balanced(cfg, 30);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.repolls, 0u);
}

}  // namespace
}  // namespace cra::sap
