// Protocol robustness under garbage: randomized malformed traffic must
// never crash an agent, corrupt another round, or (worse) make a
// compromised swarm verify. The network tamper hook plays a fuzzer.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig cfg(QoaMode qoa = QoaMode::kBinary) {
  SapConfig c;
  c.pmem_size = 2 * 1024;
  c.qoa = qoa;
  return c;
}

/// Corrupt ~1 in `rate` messages: random truncation, extension, byte
/// garbage, or kind rewrite.
net::Network::TamperHook fuzzer(Rng& rng, std::uint64_t rate) {
  return [&rng, rate](const net::Message& m) -> net::TamperResult {
    if (rng.next_below(rate) != 0) return {};
    Bytes evil = m.payload;
    switch (rng.next_below(4)) {
      case 0:  // truncate
        evil.resize(evil.size() / 2);
        break;
      case 1:  // extend with junk
        for (int i = 0; i < 9; ++i) {
          evil.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        break;
      case 2:  // flip random bytes
        for (int i = 0; i < 3 && !evil.empty(); ++i) {
          evil[rng.next_below(evil.size())] ^=
              static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        break;
      case 3:  // total garbage of random size
        evil = rng.next_bytes(rng.next_below(64));
        break;
    }
    return {net::TamperAction::kDeliverModified, std::move(evil)};
  };
}

TEST(Robustness, FuzzedMessagesNeverCrashBinaryMode) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto sim = SapSimulation::balanced(cfg(), 62, seed);
    sim.network().set_tamper_hook(fuzzer(rng, 4));
    const RoundReport r = sim.run_round();  // must terminate, not crash
    // Corrupted rounds may fail; they must never falsely pass while a
    // device is compromised (none is — any verdict is acceptable here).
    (void)r;
  }
  SUCCEED();
}

TEST(Robustness, FuzzedMessagesNeverCrashIdentifyAndCount) {
  for (QoaMode qoa : {QoaMode::kCount, QoaMode::kIdentify}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 31);
      auto sim = SapSimulation::balanced(cfg(qoa), 30, seed);
      sim.network().set_tamper_hook(fuzzer(rng, 3));
      (void)sim.run_round();
    }
  }
  SUCCEED();
}

TEST(Robustness, FuzzingNeverCreatesFalseAcceptance) {
  // The property that matters: with a compromised device, NO amount of
  // garbage injection may flip the verdict to "verified".
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7919);
    auto sim = SapSimulation::balanced(cfg(), 30, seed);
    const auto victim = static_cast<net::NodeId>(1 + rng.next_below(30));
    sim.compromise_device(victim);
    sim.network().set_tamper_hook(fuzzer(rng, 3));
    EXPECT_FALSE(sim.run_round().verified) << "seed=" << seed;
  }
}

TEST(Robustness, RecoveryAfterFuzzStorm) {
  // A round of heavy corruption must not poison the next clean round.
  Rng rng(99);
  auto sim = SapSimulation::balanced(cfg(), 30, 2);
  sim.network().set_tamper_hook(fuzzer(rng, 1));  // corrupt everything
  (void)sim.run_round();
  sim.network().set_tamper_hook({});
  sim.advance_time(sim::Duration::from_ms(100));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(Robustness, LateSelfAttestBurnsNoPhantomRepolls) {
  // Regression (schedule_deadline/on_report race): an inner node whose
  // own attest completes after its report deadline — here forced with a
  // behind-running clock — flushes with every child already in. The
  // retry bookkeeping may advance (it widens the deadline so the node's
  // own token can land), but with no child missing there is nothing to
  // re-poll: charging a repoll slot anyway is the phantom-repoll bug.
  SapConfig c = cfg();
  c.retransmit = true;
  c.max_retries = 5;
  auto sim = SapSimulation::balanced(c, 14, 3);
  sim.set_clock_skew(1, sim::Duration::from_ms(-60));
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified) << "retries widened the deadline enough";
  EXPECT_EQ(r.repolls, 0u) << "no child was missing, so no repoll";
}

TEST(Robustness, LateChildReportStillConsumesOnlyRealRepolls) {
  // The counterpart path: a *leaf* with a behind-running clock delivers
  // its token late, so its parent legitimately re-polls — slots are
  // consumed exactly when a child is actually missing.
  SapConfig c = cfg();
  c.retransmit = true;
  c.max_retries = 5;
  auto sim = SapSimulation::balanced(c, 14, 3);
  sim.set_clock_skew(13, sim::Duration::from_ms(-60));
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.repolls, 0u) << "the late leaf forced a real re-poll";
  EXPECT_LE(r.repolls, 5u);
}

TEST(Robustness, WrongKindMessagesIgnored) {
  auto sim = SapSimulation::balanced(cfg(), 10, 3);
  sim.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        (void)m;
        return {};
      });
  // Inject stray messages with bogus kinds/addresses before the round.
  sim.network().send(0, 5, 999, Bytes(7, 0xee));
  sim.network().send(0, 2000, kChalMsg, Bytes(20, 0xee));  // bad address
  EXPECT_TRUE(sim.run_round().verified);
}

}  // namespace
}  // namespace cra::sap
