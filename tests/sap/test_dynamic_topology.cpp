// Dynamic topologies (§II's SALAD dimension): the deployment tree is
// rebuilt after mobility/churn while device identities — keys, VS
// entries, compromise state — stay put. SAP's per-device keys bind a
// device to Vrf, not to neighbors, so no re-keying is ever needed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "device/device.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig small_config() {
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

/// A random re-deployment: same devices, shuffled tree positions.
void shuffle_positions(SapSimulation& sim, Rng& rng) {
  const std::uint32_t n = sim.device_count();
  std::vector<net::NodeId> mapping(n + 1);
  std::iota(mapping.begin(), mapping.end(), 0);
  // Fisher-Yates over positions 1..n (position 0 stays the verifier).
  for (std::uint32_t i = n; i >= 2; --i) {
    const auto j = static_cast<std::uint32_t>(1 + rng.next_below(i));
    std::swap(mapping[i], mapping[j]);
  }
  net::Tree tree = net::random_tree(n, 3, rng);
  sim.rebuild_topology(std::move(tree), std::move(mapping));
}

TEST(DynamicTopology, RoundVerifiesAfterShuffle) {
  auto sim = SapSimulation::balanced(small_config(), 40);
  EXPECT_TRUE(sim.run_round().verified);
  Rng rng(5);
  shuffle_positions(sim, rng);
  sim.advance_time(sim::Duration::from_ms(50));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(DynamicTopology, ManyChurnEpochsStaySound) {
  auto sim = SapSimulation::balanced(small_config(), 60);
  Rng rng(11);
  for (int epoch = 0; epoch < 8; ++epoch) {
    shuffle_positions(sim, rng);
    sim.advance_time(sim::Duration::from_ms(30));
    EXPECT_TRUE(sim.run_round().verified) << "epoch " << epoch;
  }
}

TEST(DynamicTopology, CompromiseFollowsTheDeviceNotThePosition) {
  auto sim = SapSimulation::balanced(small_config(), 30);
  sim.compromise_device(13);
  EXPECT_FALSE(sim.run_round().verified);
  Rng rng(7);
  for (int epoch = 0; epoch < 4; ++epoch) {
    shuffle_positions(sim, rng);
    sim.advance_time(sim::Duration::from_ms(30));
    EXPECT_FALSE(sim.run_round().verified) << "epoch " << epoch;
  }
  sim.restore_device(13);
  shuffle_positions(sim, rng);
  sim.advance_time(sim::Duration::from_ms(30));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(DynamicTopology, IdentifyReportsStableDeviceIds) {
  SapConfig cfg = small_config();
  cfg.qoa = QoaMode::kIdentify;
  auto sim = SapSimulation::balanced(cfg, 30);
  sim.compromise_device(21);
  Rng rng(3);
  shuffle_positions(sim, rng);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  // The verdict names device 21 regardless of where it moved.
  EXPECT_EQ(r.identify.bad, std::vector<net::NodeId>{21});
}

TEST(DynamicTopology, MappingBookkeepingConsistent) {
  auto sim = SapSimulation::balanced(small_config(), 20);
  Rng rng(9);
  shuffle_positions(sim, rng);
  EXPECT_EQ(sim.device_at(0), 0u);
  std::vector<bool> seen(21, false);
  for (net::NodeId pos = 0; pos <= 20; ++pos) {
    const net::NodeId id = sim.device_at(pos);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_EQ(sim.position_of(id), pos);
  }
}

TEST(DynamicTopology, RebuildFromConnectivityGraph) {
  // The realistic flow: mobility yields a connectivity graph; setup
  // derives a BFS spanning tree rooted at the verifier's gateway.
  auto sim = SapSimulation::balanced(small_config(), 50);
  Rng rng(21);
  net::Graph graph = net::random_connected_graph(51, 40, rng);
  std::vector<net::NodeId> labels;  // old node -> BFS position
  net::Tree tree = graph.bfs_spanning_tree(/*root=*/0, &labels);
  std::vector<net::NodeId> device_at(tree.size());
  for (net::NodeId old_id = 0; old_id < labels.size(); ++old_id) {
    device_at[labels[old_id]] = old_id;
  }
  sim.rebuild_topology(std::move(tree), std::move(device_at));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(DynamicTopology, VmSurvivesRelocation) {
  SapConfig cfg = small_config();
  auto sim = SapSimulation::balanced(cfg, 10);
  device::DeviceConfig dcfg;
  dcfg.layout = device::MemoryLayout{256, cfg.pmem_size, 1024, 4096};
  device::Device vm(4, dcfg, sim.verifier().device_key(4), Bytes(20, 9));
  vm.provision();
  ASSERT_TRUE(vm.boot());
  sim.attach_vm(4, &vm);
  EXPECT_TRUE(sim.run_round().verified);

  Rng rng(13);
  shuffle_positions(sim, rng);
  sim.advance_time(sim::Duration::from_ms(40));
  EXPECT_TRUE(sim.run_round().verified);
  vm.adv_infect_pmem(0, to_bytes("x"));
  sim.advance_time(sim::Duration::from_ms(40));
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(DynamicTopology, RejectsMalformedRebuilds) {
  auto sim = SapSimulation::balanced(small_config(), 10);
  // Wrong device count.
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(9),
                                    std::vector<net::NodeId>(10)),
               std::invalid_argument);
  // Mapping size mismatch.
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(10),
                                    std::vector<net::NodeId>(10)),
               std::invalid_argument);
  // Verifier not at position 0.
  std::vector<net::NodeId> bad(11);
  std::iota(bad.begin(), bad.end(), 0);
  std::swap(bad[0], bad[1]);
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(10), bad),
               std::invalid_argument);
  // Not a permutation.
  std::vector<net::NodeId> dup(11);
  std::iota(dup.begin(), dup.end(), 0);
  dup[10] = 5;
  EXPECT_THROW(sim.rebuild_topology(net::balanced_kary_tree(10), dup),
               std::invalid_argument);
}

TEST(DynamicTopology, TopologyChangeNeedsNoRekeying) {
  // The verifier's expected result for a given chal is topology-free:
  // RES_S depends only on (keys, VS, chal).
  auto sim = SapSimulation::balanced(small_config(), 15);
  const Bytes before = sim.verifier().expected_result(1234);
  Rng rng(17);
  shuffle_positions(sim, rng);
  EXPECT_EQ(sim.verifier().expected_result(1234), before);
}

}  // namespace
}  // namespace cra::sap
