// Quality-of-Attestation modes (§VIII): count and identify, and the
// bandwidth trade-off against binary aggregation.
#include <gtest/gtest.h>

#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig qoa_config(QoaMode mode) {
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.qoa = mode;
  return cfg;
}

TEST(QoaCount, HonestRoundReportsFullCount) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kCount), 40);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.responded, 40u);
}

TEST(QoaCount, UnresponsiveSubtreeVisibleInCount) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kCount), 62);
  sim.set_device_unresponsive(2, true);  // subtree of node 2 dark
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  // Node 2 heads a 31-node subtree of the 62-device tree.
  EXPECT_EQ(r.responded, 31u);
}

TEST(QoaCount, CompromisedDeviceStillCounted) {
  // An infected device responds (with a wrong token): count
  // distinguishes "infected" from "unresponsive".
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kCount), 20);
  sim.compromise_device(9);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.responded, 20u);
}

TEST(QoaIdentify, PinpointsInfectedDevices) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kIdentify), 30);
  sim.compromise_device(7);
  sim.compromise_device(23);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.identify.bad, (std::vector<net::NodeId>{7, 23}));
  EXPECT_TRUE(r.identify.missing.empty());
}

TEST(QoaIdentify, PinpointsUnresponsiveDevices) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kIdentify), 30);
  sim.set_device_unresponsive(30, true);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_TRUE(r.identify.bad.empty());
  EXPECT_EQ(r.identify.missing, std::vector<net::NodeId>{30});
}

TEST(QoaIdentify, DarkSubtreeListedAsMissing) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kIdentify), 14);
  sim.set_device_unresponsive(1, true);  // nodes 1,3,4,7,8,9,10 dark
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.identify.missing,
            (std::vector<net::NodeId>{1, 3, 4, 7, 8, 9, 10}));
}

TEST(QoaIdentify, HonestRoundAllGood) {
  auto sim = SapSimulation::balanced(qoa_config(QoaMode::kIdentify), 25);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.responded, 25u);
  EXPECT_TRUE(r.identify.all_good());
}

TEST(QoaTradeoff, IdentifyCostsMoreBandwidthThanBinary) {
  // The §VIII QoA discussion: granularity costs network utilization.
  const std::uint32_t n = 62;
  auto binary = SapSimulation::balanced(qoa_config(QoaMode::kBinary), n);
  auto identify = SapSimulation::balanced(qoa_config(QoaMode::kIdentify), n);
  const auto rb = binary.run_round();
  const auto ri = identify.run_round();
  EXPECT_TRUE(rb.verified);
  EXPECT_TRUE(ri.verified);
  // Binary: Θ(N·l). Identify: token entries accumulate toward the root,
  // costing Θ(N·l·depth)-ish — strictly more.
  EXPECT_GT(ri.u_ca_bytes, 2 * rb.u_ca_bytes);
}

TEST(QoaTradeoff, CountAddsOnlyConstantPerLink) {
  const std::uint32_t n = 62;
  auto binary = SapSimulation::balanced(qoa_config(QoaMode::kBinary), n);
  auto count = SapSimulation::balanced(qoa_config(QoaMode::kCount), n);
  const auto rb = binary.run_round();
  const auto rc = count.run_round();
  // kCount adds exactly 4 bytes per report link.
  EXPECT_EQ(rc.u_ca_bytes, rb.u_ca_bytes + 4ull * n);
}

}  // namespace
}  // namespace cra::sap
