#include "sap/messages.hpp"

#include <gtest/gtest.h>

namespace cra::sap {
namespace {

TEST(ChalCodec, RoundTripUnauthenticated) {
  const Bytes payload = encode_chal(12345, /*auth_key=*/{}, 20);
  EXPECT_EQ(payload.size(), 20u);
  const auto view = decode_chal(payload, 20);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->tick, 12345u);
  EXPECT_TRUE(all_zero(view->auth));
  EXPECT_TRUE(chal_authentic(*view, {}));  // auth disabled: always true
}

TEST(ChalCodec, RoundTripAuthenticated) {
  const Bytes key = to_bytes("group-request-key");
  const Bytes payload = encode_chal(777, key, 20);
  const auto view = decode_chal(payload, 20);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->tick, 777u);
  EXPECT_FALSE(all_zero(view->auth));
  EXPECT_TRUE(chal_authentic(*view, key));
}

TEST(ChalCodec, WrongKeyRejected) {
  const Bytes payload = encode_chal(777, to_bytes("right-key"), 20);
  const auto view = decode_chal(payload, 20);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(chal_authentic(*view, to_bytes("wrong-key")));
}

TEST(ChalCodec, SpoofedTickRejected) {
  // Adv rewrites the tick but cannot fix the authenticator.
  const Bytes key = to_bytes("k");
  Bytes payload = encode_chal(100, key, 20);
  payload[0] = 99;  // tick -> 99 (little-endian low byte)
  const auto view = decode_chal(payload, 20);
  ASSERT_TRUE(view.has_value());
  EXPECT_FALSE(chal_authentic(*view, key));
}

TEST(ChalCodec, MalformedPayloads) {
  EXPECT_FALSE(decode_chal(Bytes(19, 0), 20).has_value());
  EXPECT_FALSE(decode_chal(Bytes(21, 0), 20).has_value());
  EXPECT_THROW(encode_chal(1, {}, 8), std::invalid_argument);
}

TEST(ChalCodec, LargerSecurityParameter) {
  const Bytes payload = encode_chal(5, {}, 32);  // SHA-256 deployment
  EXPECT_EQ(payload.size(), 32u);
  EXPECT_TRUE(decode_chal(payload, 32).has_value());
}

TEST(IdentifyCodec, RoundTrip) {
  std::vector<DeviceReport> reports;
  for (std::uint32_t id : {1u, 7u, 42u}) {
    reports.push_back({id, Bytes(20, static_cast<std::uint8_t>(id))});
  }
  const Bytes payload = encode_identify(reports, 20);
  EXPECT_EQ(payload.size(), 3 * 24u);
  const auto decoded = decode_identify(payload, 20);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1].id, 7u);
  EXPECT_EQ((*decoded)[1].token, Bytes(20, 7));
}

TEST(IdentifyCodec, EmptyListIsValid) {
  const Bytes payload = encode_identify({}, 20);
  EXPECT_TRUE(payload.empty());
  const auto decoded = decode_identify(payload, 20);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(IdentifyCodec, RejectsMisalignedPayload) {
  EXPECT_FALSE(decode_identify(Bytes(23, 0), 20).has_value());
  EXPECT_THROW(encode_identify({{1, Bytes(19, 0)}}, 20),
               std::invalid_argument);
}

TEST(CountCodec, RoundTrip) {
  const Bytes token(20, 0xaa);
  const Bytes payload = encode_count_token(token, 999);
  EXPECT_EQ(payload.size(), 24u);
  const auto decoded = decode_count_token(payload, 20);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->token, token);
  EXPECT_EQ(decoded->count, 999u);
}

TEST(CountCodec, RejectsWrongSize) {
  EXPECT_FALSE(decode_count_token(Bytes(20, 0), 20).has_value());
  EXPECT_FALSE(decode_count_token(Bytes(25, 0), 20).has_value());
}

TEST(QoaNames, AllNamed) {
  EXPECT_STREQ(qoa_name(QoaMode::kBinary), "binary");
  EXPECT_STREQ(qoa_name(QoaMode::kCount), "count");
  EXPECT_STREQ(qoa_name(QoaMode::kIdentify), "identify");
}

}  // namespace
}  // namespace cra::sap
