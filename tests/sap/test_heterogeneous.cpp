// Heterogeneous swarms: mixed hardware classes (§II design-space
// parameter; §VIII "Resource-Constrained Devices" model extension).
#include <gtest/gtest.h>

#include "sap/analysis.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig hetero_config() {
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;          // class 0: 24 MHz, 4 KB
  cfg.extra_classes.push_back(
      {"slow-8mhz", 8'000'000, 4 * 1024, 14'400});   // class 1: 3x slower
  cfg.extra_classes.push_back(
      {"fast-48mhz", 48'000'000, 4 * 1024, 14'400}); // class 2: 2x faster
  cfg.extra_classes.push_back(
      {"big-pmem", 24'000'000, 16 * 1024, 14'400});  // class 3: 4x memory
  return cfg;
}

TEST(Heterogeneous, MixedClassesStillVerify) {
  auto sim = SapSimulation::balanced(hetero_config(), 30);
  for (net::NodeId id = 1; id <= 30; ++id) {
    sim.assign_device_class(id, static_cast<std::uint8_t>(id % 4));
  }
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
}

TEST(Heterogeneous, MeasurementStretchesToSlowestClass) {
  SapConfig cfg = hetero_config();
  auto sim = SapSimulation::balanced(cfg, 20);
  sim.assign_device_class(7, 1);  // one slow device in the swarm
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  // The measurement phase is the slow class's T_att, not the default's.
  EXPECT_EQ(r.measurement().ns(), sim.max_attest_time().ns());
  EXPECT_GT(sim.max_attest_time().ns(), attest_time(cfg).ns());
}

TEST(Heterogeneous, AttestTimeOrderingAcrossClasses) {
  auto sim = SapSimulation::balanced(hetero_config(), 8);
  sim.assign_device_class(1, 0);
  sim.assign_device_class(2, 1);  // slow
  sim.assign_device_class(3, 2);  // fast
  sim.assign_device_class(4, 3);  // big PMEM
  EXPECT_GT(sim.attest_time_for(2).ns(), sim.attest_time_for(1).ns());
  EXPECT_LT(sim.attest_time_for(3).ns(), sim.attest_time_for(1).ns());
  EXPECT_GT(sim.attest_time_for(4).ns(), sim.attest_time_for(1).ns());
  // 8 MHz is exactly 3x slower than 24 MHz on the same block count.
  EXPECT_NEAR(static_cast<double>(sim.attest_time_for(2).ns()) /
                  static_cast<double>(sim.attest_time_for(1).ns()),
              3.0, 0.01);
}

TEST(Heterogeneous, FastDevicesDoNotFinishTheRoundEarly) {
  // Even if every device is the fast class, inner-node deadlines are
  // sized for the slowest *defined* class — the conservative bound the
  // verifier must assume without per-class topology knowledge.
  SapConfig cfg = hetero_config();
  auto sim = SapSimulation::balanced(cfg, 20);
  for (net::NodeId id = 1; id <= 20; ++id) sim.assign_device_class(id, 2);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  // Completion is event-driven, so the round still ends when the last
  // (fast) token arrives — before the conservative measurement bound.
  EXPECT_LT(r.t_resp.ns(), (r.t_att + sim.max_attest_time()).ns() +
                               sim::Duration::from_ms(50).ns());
}

TEST(Heterogeneous, CompromisedSlowDeviceStillDetected) {
  auto sim = SapSimulation::balanced(hetero_config(), 30);
  sim.assign_device_class(9, 1);
  sim.compromise_device(9);
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(Heterogeneous, UnknownClassRejected) {
  auto sim = SapSimulation::balanced(hetero_config(), 5);
  EXPECT_THROW(sim.assign_device_class(1, 4), std::out_of_range);
  EXPECT_NO_THROW(sim.assign_device_class(1, 3));
  EXPECT_EQ(sim.device_class(1), 3);
}

TEST(Heterogeneous, HomogeneousConfigUnchanged) {
  // No extra classes: max_attest_time is the base attest time and class
  // assignment only accepts 0.
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  auto sim = SapSimulation::balanced(cfg, 10);
  EXPECT_EQ(sim.max_attest_time().ns(), attest_time(cfg).ns());
  EXPECT_THROW(sim.assign_device_class(1, 1), std::out_of_range);
}

}  // namespace
}  // namespace cra::sap
