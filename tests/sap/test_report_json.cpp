#include "sap/report_json.hpp"

#include <gtest/gtest.h>

#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

TEST(ReportJson, HealthyRoundSerializes) {
  SapConfig cfg;
  cfg.pmem_size = 2 * 1024;
  auto sim = SapSimulation::balanced(cfg, 15);
  const std::string json = report_to_json(sim.run_round());
  EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
  EXPECT_NE(json.find("\"devices\":15"), std::string::npos);
  EXPECT_NE(json.find("\"u_ca_bytes\":600"), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"bad\":[]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportJson, IdentifyModeListsDevices) {
  SapConfig cfg;
  cfg.pmem_size = 2 * 1024;
  cfg.qoa = QoaMode::kIdentify;
  auto sim = SapSimulation::balanced(cfg, 15);
  sim.compromise_device(7);
  sim.set_device_unresponsive(15, true);
  const std::string json = report_to_json(sim.run_round());
  EXPECT_NE(json.find("\"verified\":false"), std::string::npos);
  EXPECT_NE(json.find("\"bad\":[7]"), std::string::npos);
  EXPECT_NE(json.find("\"missing\":[15]"), std::string::npos);
}

TEST(ReportJson, BalancedBraces) {
  SapConfig cfg;
  cfg.pmem_size = 2 * 1024;
  auto sim = SapSimulation::balanced(cfg, 5);
  const std::string json = report_to_json(sim.run_round());
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace cra::sap
