// Physical-capture detection via heartbeats (§VIII extension).
#include "sap/heartbeat.hpp"

#include <gtest/gtest.h>

#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

HeartbeatConfig fast_config() {
  HeartbeatConfig cfg;
  cfg.period = sim::Duration::from_ms(50);
  cfg.absence_threshold = sim::Duration::from_ms(120);
  return cfg;
}

TEST(Heartbeat, QuietFleetReportsNothing) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 30);
  hb.run_monitoring(sim::Duration::from_sec(2.0));
  EXPECT_TRUE(hb.collect().empty());
  EXPECT_EQ(hb.forged_beats(), 0u);
}

TEST(Heartbeat, CapturedLeafIsReported) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 30);
  hb.run_monitoring(sim::Duration::from_ms(500));
  hb.capture_device(30);
  hb.run_monitoring(sim::Duration::from_ms(500));
  const auto report = hb.collect();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].device, 30u);
  EXPECT_GT(report[0].gap.ms(), 400.0);
}

TEST(Heartbeat, ShortAbsenceBelowThresholdUnreported) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 20);
  hb.run_monitoring(sim::Duration::from_ms(500));
  hb.capture_device(7);
  hb.run_monitoring(sim::Duration::from_ms(80));  // < threshold
  hb.release_device(7);
  hb.run_monitoring(sim::Duration::from_ms(300));
  EXPECT_TRUE(hb.collect().empty());
}

TEST(Heartbeat, CaptureReleaseStillLeavesGapWhileFresh) {
  // Captured long enough, then returned: until fresh beats rebuild the
  // record, collection flags the gap... but if collection happens after
  // the device resumed beating, the gap closes. Both directions:
  auto hb = HeartbeatSimulation::balanced(fast_config(), 20);
  hb.run_monitoring(sim::Duration::from_ms(400));
  hb.capture_device(9);
  hb.run_monitoring(sim::Duration::from_ms(400));  // long absence
  hb.release_device(9);
  // Collect immediately: gap still visible.
  const auto immediate = hb.collect();
  ASSERT_EQ(immediate.size(), 1u);
  EXPECT_EQ(immediate[0].device, 9u);
  // After the device beats again, the live gap disappears (the *log* of
  // the past gap is the verifier's to keep — it saw the report above).
  hb.run_monitoring(sim::Duration::from_ms(300));
  EXPECT_TRUE(hb.collect().empty());
}

TEST(Heartbeat, RevivedDeviceIsFlaggedExactlyOnce) {
  // Absent-flagging must be edge-triggered per collection sweep: a
  // device that goes dark long enough to be flagged and then revives is
  // reported in exactly one sweep — the one that observes the gap — and
  // re-enters monitoring cleanly afterwards (no sticky flag, no repeat
  // alarms once fresh beats rebuild the record).
  auto hb = HeartbeatSimulation::balanced(fast_config(), 20);
  hb.run_monitoring(sim::Duration::from_ms(400));
  hb.capture_device(11);
  hb.run_monitoring(sim::Duration::from_ms(400));
  hb.release_device(11);
  // Sweep 1: the gap is live — flagged, and exactly once in the report.
  const auto first = hb.collect();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].device, 11u);
  // Beats resume; once the record is fresh, later sweeps stay clean.
  hb.run_monitoring(sim::Duration::from_ms(400));
  EXPECT_TRUE(hb.collect().empty())
      << "the revived device must not be re-flagged";
  hb.run_monitoring(sim::Duration::from_ms(400));
  EXPECT_TRUE(hb.collect().empty());
}

TEST(Heartbeat, RevivedDeviceReentersTheNextAttestationRoundOnce) {
  // The attestation-plane half of revival: a device the monitoring
  // plane flagged absent (modeled as unresponsive during round 1)
  // surfaces as unreachable exactly once; after revival the next round
  // counts it exactly once as healthy — one status entry, no duplicate
  // report entries from stale round state.
  SapConfig cfg;
  cfg.pmem_size = 2 * 1024;
  cfg.qoa = QoaMode::kIdentify;
  cfg.adaptive.enabled = true;
  auto sap = SapSimulation::balanced(cfg, 20, /*seed=*/3);
  sap.set_device_unresponsive(11, true);
  const RoundReport absent = sap.run_round();
  ASSERT_TRUE(absent.degraded.enabled);
  EXPECT_EQ(absent.degraded.unreachable_ids, std::vector<net::NodeId>{11});
  EXPECT_EQ(absent.degraded.healthy, 19u);

  sap.set_device_unresponsive(11, false);  // revived
  sap.advance_time(sim::Duration::from_ms(100));
  const RoundReport revived = sap.run_round();
  EXPECT_TRUE(revived.verified);
  EXPECT_EQ(revived.degraded.healthy, 20u) << "back in, counted once";
  EXPECT_EQ(revived.degraded.unreachable, 0u);
  EXPECT_EQ(revived.degraded.healthy + revived.degraded.unreachable +
                revived.degraded.untrusted + revived.degraded.rebooted,
            20u)
      << "every device classified exactly once";
}

TEST(Heartbeat, CapturedInnerNodeDarkensItsSubtree) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 14);
  hb.run_monitoring(sim::Duration::from_ms(300));
  hb.capture_device(2);  // children 5,6 route through it
  hb.run_monitoring(sim::Duration::from_ms(500));
  const auto report = hb.collect();
  // The subtree behind the captured relay is unobservable: its members'
  // gaps live in logs that cannot be collected through the dead node.
  // The verifier still learns the subtree head is gone — which taints
  // everything below it by topology (the tree is the verifier's own
  // deployment record).
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].device, 2u);
}

TEST(Heartbeat, ForgedBeatsRejected) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 10);
  hb.capture_device(5);
  // The adversary forges presence for the captured device: wrong MAC.
  hb.network().set_tamper_hook(
      [](const net::Message& m) -> net::TamperResult {
        if (m.kind == 10 /*beat*/ && m.src == 4) {
          // Rewrite neighbour 4's beat to claim it is device 5.
          Bytes forged = m.payload;
          forged[0] = 5;
          return {net::TamperAction::kDeliverModified, std::move(forged)};
        }
        return {};
      });
  hb.run_monitoring(sim::Duration::from_sec(1.0));
  EXPECT_GT(hb.forged_beats(), 0u);
  const auto report = hb.collect();
  // Device 5 is still flagged (forgery failed); device 4's beats were
  // consumed by the tamper, so it shows up too — the attack only *adds*
  // alarms.
  bool found5 = false;
  for (const auto& e : report) found5 = found5 || e.device == 5;
  EXPECT_TRUE(found5);
}

TEST(Heartbeat, SapAloneIsBlindToCaptureButHeartbeatIsNot) {
  // The §VIII motivation, end to end: capture a device between SAP
  // rounds, tamper nothing (or restore PMEM perfectly), return it.
  SapConfig sap_cfg;
  sap_cfg.pmem_size = 2 * 1024;
  auto sap = SapSimulation::balanced(sap_cfg, 20, /*seed=*/3);
  EXPECT_TRUE(sap.run_round().verified);
  // ... capture happens here, offline, invisible to SAP ...
  sap.advance_time(sim::Duration::from_sec(1.0));
  EXPECT_TRUE(sap.run_round().verified);  // SAP: all clear. Blind spot.

  auto hb = HeartbeatSimulation::balanced(fast_config(), 20, /*seed=*/3);
  hb.run_monitoring(sim::Duration::from_ms(300));
  hb.capture_device(12);
  hb.run_monitoring(sim::Duration::from_ms(700));
  hb.release_device(12);
  const auto report = hb.collect();
  ASSERT_FALSE(report.empty());  // heartbeat: capture window exposed
  EXPECT_EQ(report[0].device, 12u);
}

TEST(Heartbeat, MonitoringCostIsLinearPerPeriod) {
  auto hb = HeartbeatSimulation::balanced(fast_config(), 50);
  hb.network().reset_accounting();
  hb.run_monitoring(sim::Duration::from_sec(1.0));
  // ~20 periods x 50 devices x 20-byte beats; relays don't re-forward
  // (parents consume beats), so it is per-link, not per-path.
  const double beats =
      static_cast<double>(hb.network().messages_sent());
  EXPECT_NEAR(beats, 20.0 * 50.0, 100.0);
}

}  // namespace
}  // namespace cra::sap
