#include "sap/vs_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

SapConfig cfg() {
  SapConfig c;
  c.pmem_size = 2 * 1024;
  return c;
}

TEST(VsStore, RoundTripThroughString) {
  auto sim = SapSimulation::balanced(cfg(), 12);
  const std::string dump = vs_to_string(sim.verifier());
  EXPECT_NE(dump.find("cra-vs 1"), std::string::npos);
  EXPECT_NE(dump.find("devices 12"), std::string::npos);

  const auto contents =
      vs_from_string(dump, crypto::HashAlg::kSha1, 12);
  ASSERT_EQ(contents.size(), 12u);
  for (net::NodeId id = 1; id <= 12; ++id) {
    EXPECT_EQ(contents[id - 1], sim.verifier().expected_content(id));
  }
}

TEST(VsStore, RestartedVerifierStillVerifiesTheFleet) {
  // The operational scenario: the verifier service restarts; VS comes
  // back from disk, keys come back from the key service (the master
  // seed); verification must agree across the restart.
  auto sim = SapSimulation::balanced(cfg(), 20, /*seed=*/5);
  const std::string path = "/tmp/cra_vs_store_test.vs";
  save_vs(sim.verifier(), path);

  // Corrupt the in-memory VS, then restore from disk.
  for (net::NodeId id = 1; id <= 20; ++id) {
    sim.verifier().set_expected_content(id, to_bytes("garbage"));
  }
  EXPECT_FALSE(sim.run_round().verified);  // VS wrong -> mismatch
  load_vs(sim.verifier(), path);
  sim.advance_time(sim::Duration::from_ms(50));
  EXPECT_TRUE(sim.run_round().verified);
  std::remove(path.c_str());
}

TEST(VsStore, RejectsMalformedDumps) {
  EXPECT_THROW(vs_from_string("garbage", crypto::HashAlg::kSha1),
               std::invalid_argument);
  EXPECT_THROW(vs_from_string("cra-vs 2\nalg sha1\ndevices 1\n",
                              crypto::HashAlg::kSha1),
               std::invalid_argument);
  EXPECT_THROW(
      vs_from_string("cra-vs 1\nalg sha256\ndevices 1\ncfg 1 aa\n",
                     crypto::HashAlg::kSha1),  // alg mismatch
      std::invalid_argument);
  EXPECT_THROW(
      vs_from_string("cra-vs 1\nalg sha1\ndevices 2\ncfg 1 aa\ncfg 1 bb\n",
                     crypto::HashAlg::kSha1),  // duplicate id
      std::invalid_argument);
  EXPECT_THROW(
      vs_from_string("cra-vs 1\nalg sha1\ndevices 1\ncfg 9 aa\n",
                     crypto::HashAlg::kSha1),  // id out of range
      std::invalid_argument);
  EXPECT_THROW(
      vs_from_string("cra-vs 1\nalg sha1\ndevices 1\ncfg 1 aa\n",
                     crypto::HashAlg::kSha1, /*expect_devices=*/7),
      std::invalid_argument);
}

TEST(VsStore, FileErrorsSurface) {
  auto sim = SapSimulation::balanced(cfg(), 3);
  EXPECT_THROW(save_vs(sim.verifier(), "/nonexistent-dir/x.vs"),
               std::runtime_error);
  EXPECT_THROW(load_vs(sim.verifier(), "/nonexistent-dir/x.vs"),
               std::runtime_error);
}

TEST(VsStore, DumpIsStableAcrossCalls) {
  auto sim = SapSimulation::balanced(cfg(), 5, /*seed=*/9);
  EXPECT_EQ(vs_to_string(sim.verifier()), vs_to_string(sim.verifier()));
}

}  // namespace
}  // namespace cra::sap
