#include "sap/energy.hpp"

#include <gtest/gtest.h>

namespace cra::sap {
namespace {

SapConfig cfg() { return SapConfig{}; }

TEST(SwarmEnergy, BinaryModeMatchesTable3Rows) {
  // In binary QoA the per-role figures ARE Table III's entries.
  const net::Tree tree = net::balanced_kary_tree(1022);  // full binary
  const auto e = estimate_swarm_energy(tree, cfg(), power::micaz());
  EXPECT_NEAR(e.leaf_mw, 0.3372, 1e-4);
  EXPECT_NEAR(e.inner_mw, 0.5516, 1e-4);
}

TEST(SwarmEnergy, CountsRolesCorrectly) {
  const net::Tree tree = net::balanced_kary_tree(6);  // nodes 1..6
  const auto e = estimate_swarm_energy(tree, cfg(), power::micaz());
  // Heap layout: nodes 1,2 are inner (children 3..6), 3..6 leaves.
  EXPECT_EQ(e.inner, 2u);
  EXPECT_EQ(e.leaves, 4u);
  EXPECT_NEAR(e.total_mw, 2 * e.inner_mw + 4 * e.leaf_mw, 1e-9);
  EXPECT_NEAR(e.mean_mw, e.total_mw / 6.0, 1e-9);
}

TEST(SwarmEnergy, StarIsAllLeaves) {
  const net::Tree tree = net::star_tree(50);
  const auto e = estimate_swarm_energy(tree, cfg(), power::telosb());
  EXPECT_EQ(e.leaves, 50u);
  EXPECT_EQ(e.inner, 0u);
  EXPECT_DOUBLE_EQ(e.inner_mw, 0.0);
}

TEST(SwarmEnergy, TotalScalesLinearlyInN) {
  const auto small =
      estimate_swarm_energy(net::balanced_kary_tree(1000), cfg(),
                            power::micaz());
  const auto large =
      estimate_swarm_energy(net::balanced_kary_tree(100000), cfg(),
                            power::micaz());
  EXPECT_NEAR(large.total_mw / small.total_mw, 100.0, 2.0);
  EXPECT_NEAR(large.mean_mw, small.mean_mw, 0.01);
}

TEST(SwarmEnergy, IdentifyModeCostsMore) {
  const net::Tree tree = net::balanced_kary_tree(1022);
  SapConfig identify = cfg();
  identify.qoa = QoaMode::kIdentify;
  const auto eb = estimate_swarm_energy(tree, cfg(), power::micaz());
  const auto ei = estimate_swarm_energy(tree, identify, power::micaz());
  EXPECT_GT(ei.total_mw, 2 * eb.total_mw);
}

TEST(SwarmEnergy, CountModeAddsLittle) {
  const net::Tree tree = net::balanced_kary_tree(1022);
  SapConfig count = cfg();
  count.qoa = QoaMode::kCount;
  const auto eb = estimate_swarm_energy(tree, cfg(), power::micaz());
  const auto ec = estimate_swarm_energy(tree, count, power::micaz());
  EXPECT_GT(ec.total_mw, eb.total_mw);
  EXPECT_LT(ec.total_mw, 1.1 * eb.total_mw);
}

TEST(SwarmEnergy, LineTopologyIsInnerHeavy) {
  // A path has one leaf: per-device mean approaches the inner figure.
  const auto e = estimate_swarm_energy(net::line_tree(100), cfg(),
                                       power::micaz());
  EXPECT_EQ(e.leaves, 1u);
  EXPECT_EQ(e.inner, 99u);
  EXPECT_GT(e.mean_mw, 0.9 * e.inner_mw);
}

}  // namespace
}  // namespace cra::sap
