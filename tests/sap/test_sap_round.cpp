// End-to-end SAP rounds on synthetic swarms: soundness on honest runs,
// detection of compromised/unresponsive devices, timing/utilization
// against the analytic model.
#include "sap/swarm.hpp"

#include <gtest/gtest.h>

#include "sap/analysis.hpp"

namespace cra::sap {
namespace {

SapConfig small_config() {
  SapConfig cfg;
  // Shrink PMEM so unit tests run fast; the model is unchanged.
  cfg.pmem_size = 4 * 1024;
  return cfg;
}

TEST(SapRound, HonestRunVerifies) {
  auto sim = SapSimulation::balanced(small_config(), 50, /*seed=*/1);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.devices, 50u);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(SapRound, SingleDeviceSwarm) {
  auto sim = SapSimulation::balanced(small_config(), 1);
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(SapRound, TwoConsecutiveRoundsUseFreshChallenges) {
  auto sim = SapSimulation::balanced(small_config(), 20);
  const RoundReport r1 = sim.run_round();
  sim.advance_time(sim::Duration::from_ms(50));
  const RoundReport r2 = sim.run_round();
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r2.verified);
  EXPECT_GT(r2.chal_tick, r1.chal_tick);  // chal never repeats
}

TEST(SapRound, CompromisedDeviceDetected) {
  auto sim = SapSimulation::balanced(small_config(), 30);
  sim.compromise_device(17);
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(SapRound, CompromisedLeafAndInnerAndRootChild) {
  for (net::NodeId victim : {1u, 2u, 15u, 30u}) {
    auto sim = SapSimulation::balanced(small_config(), 30);
    sim.compromise_device(victim);
    EXPECT_FALSE(sim.run_round().verified) << "victim=" << victim;
  }
}

TEST(SapRound, RestoreHealsTheSwarm) {
  auto sim = SapSimulation::balanced(small_config(), 30);
  sim.compromise_device(5);
  EXPECT_FALSE(sim.run_round().verified);
  sim.restore_device(5);
  sim.advance_time(sim::Duration::from_ms(50));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(SapRound, MultipleCompromisedStillDetected) {
  auto sim = SapSimulation::balanced(small_config(), 64);
  for (net::NodeId id : {3u, 9u, 27u, 54u}) sim.compromise_device(id);
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(SapRound, UnresponsiveLeafFailsVerification) {
  auto sim = SapSimulation::balanced(small_config(), 30);
  sim.set_device_unresponsive(30, true);
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
}

TEST(SapRound, UnresponsiveInnerNodeSilencesSubtreeButRoundCompletes) {
  auto sim = SapSimulation::balanced(small_config(), 62);
  sim.set_device_unresponsive(2, true);  // half the tree goes dark
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_GT(r.t_resp.ns(), r.t_att.ns());  // deadline path still returns
}

TEST(SapRound, ClockSkewBeyondTickFailsThatDevice) {
  auto sim = SapSimulation::balanced(small_config(), 20);
  // Two full ticks of skew: the device attests at the wrong real time,
  // its local check chal != readSecureClock() yields a zero token.
  sim.set_clock_skew(7, sim::Duration::from_ms(25));
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(SapRound, SubTickSkewIsHarmless) {
  auto sim = SapSimulation::balanced(small_config(), 20);
  sim.set_clock_skew(7, sim::Duration::from_us(200));
  // 0.2 ms ≪ the 10.42 ms tick: quantization absorbs it — only if the
  // attest moment stays inside the same tick. Use several devices and
  // both signs.
  sim.set_clock_skew(8, sim::Duration::from_us(-200));
  EXPECT_TRUE(sim.run_round().verified);
}

TEST(SapRound, InboundCompletesBeforeTatt) {
  // Soundness observation 1 (§VI-B): chal reaches everyone before t_att.
  for (std::uint32_t n : {10u, 100u, 1000u}) {
    auto sim = SapSimulation::balanced(small_config(), n);
    const RoundReport r = sim.run_round();
    EXPECT_TRUE(r.verified);
    EXPECT_LE(r.inbound_end.ns(), r.t_att.ns()) << "N=" << n;
  }
}

TEST(SapRound, UtilizationMatchesLemma2) {
  const SapConfig cfg = small_config();
  for (std::uint32_t n : {10u, 100u, 500u}) {
    auto sim = SapSimulation::balanced(cfg, n);
    const RoundReport r = sim.run_round();
    // Every edge carries exactly one chal and one token: 40 bytes.
    EXPECT_EQ(r.u_ca_bytes, predicted_u_ca_bytes(cfg, n)) << "N=" << n;
  }
}

TEST(SapRound, RoundTimeMatchesLemma3Prediction) {
  const SapConfig cfg = small_config();
  for (std::uint32_t n : {10u, 100u, 1000u}) {
    auto sim = SapSimulation::balanced(cfg, n);
    const RoundReport r = sim.run_round();
    const double predicted =
        predicted_total(cfg, sim.tree().max_depth()).sec();
    // Tick quantization adds at most one tick (10.42 ms) of slack.
    EXPECT_NEAR(r.total().sec(), predicted, 0.015) << "N=" << n;
  }
}

TEST(SapRound, PhasesArePositiveAndSumToTotal) {
  auto sim = SapSimulation::balanced(small_config(), 200);
  const RoundReport r = sim.run_round();
  EXPECT_GT(r.inbound().ns(), 0);
  EXPECT_GE(r.slack().ns(), 0);
  EXPECT_GT(r.measurement().ns(), 0);
  EXPECT_GT(r.outbound().ns(), 0);
  EXPECT_EQ(r.inbound().ns() + r.slack().ns() + r.measurement().ns() +
                r.outbound().ns(),
            r.total().ns());
}

TEST(SapRound, MeasurementIsConstantAcrossN) {
  // Figure 3(b): the measurement phase does not depend on swarm size.
  const SapConfig cfg = small_config();
  auto sim_small = SapSimulation::balanced(cfg, 10);
  auto sim_large = SapSimulation::balanced(cfg, 1000);
  EXPECT_EQ(sim_small.run_round().measurement().ns(),
            sim_large.run_round().measurement().ns());
}

TEST(SapRound, LineTopologyStillSound) {
  // Eq. 9 adapts to any tree depth: a 40-deep path still verifies.
  auto sim = SapSimulation(small_config(), net::line_tree(40));
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
}

TEST(SapRound, RandomTopologiesSound) {
  const SapConfig cfg = small_config();
  for (std::uint64_t seed : {3ULL, 5ULL, 8ULL}) {
    Rng rng(seed);
    auto sim = SapSimulation(cfg, net::random_tree(200, 4, rng), seed);
    EXPECT_TRUE(sim.run_round().verified) << "seed=" << seed;
  }
}

TEST(SapRound, SecondRoundAfterCompromiseIsIndependent) {
  auto sim = SapSimulation::balanced(small_config(), 16);
  EXPECT_TRUE(sim.run_round().verified);
  sim.compromise_device(4);
  sim.advance_time(sim::Duration::from_ms(30));
  EXPECT_FALSE(sim.run_round().verified);
  sim.restore_device(4);
  sim.compromise_device(11);
  sim.advance_time(sim::Duration::from_ms(30));
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(SapRound, Sha256ParameterAlsoWorks) {
  SapConfig cfg = small_config();
  cfg.alg = crypto::HashAlg::kSha256;
  auto sim = SapSimulation::balanced(cfg, 30);
  const RoundReport r = sim.run_round();
  EXPECT_TRUE(r.verified);
  // l = 256: per-link bytes = 2 x 32.
  EXPECT_EQ(r.u_ca_bytes, 64u * 30u);
}

}  // namespace
}  // namespace cra::sap
