// Full-fidelity integration: every swarm member is a real device::Device
// VM — secure clock checks, MPU-protected keys, HMAC over actual PMEM —
// driven by the SAP protocol over the simulated network.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "device/device.hpp"
#include "sap/swarm.hpp"

namespace cra::sap {
namespace {

struct VmSwarm {
  SapConfig cfg;
  std::unique_ptr<SapSimulation> sim;
  std::vector<std::unique_ptr<device::Device>> vms;

  explicit VmSwarm(std::uint32_t n) {
    cfg.pmem_size = 4 * 1024;
    sim = std::make_unique<SapSimulation>(
        cfg, net::balanced_kary_tree(n, cfg.tree_arity), /*seed=*/3);
    for (net::NodeId id = 1; id <= n; ++id) {
      device::DeviceConfig dcfg;
      dcfg.layout = device::MemoryLayout{256, cfg.pmem_size, 1024, 4096};
      auto vm = std::make_unique<device::Device>(
          id, dcfg, sim->verifier().device_key(id), Bytes(20, 0x77));
      vm->load_firmware(to_bytes("firmware of device " + std::to_string(id)));
      vm->provision();
      EXPECT_TRUE(vm->boot());
      sim->attach_vm(id, vm.get());
      vms.push_back(std::move(vm));
    }
  }
};

TEST(VmIntegration, HonestSwarmOfRealMachinesVerifies) {
  VmSwarm swarm(7);
  const RoundReport r = swarm.sim->run_round();
  EXPECT_TRUE(r.verified);
}

TEST(VmIntegration, RealMalwareInfectionDetected) {
  VmSwarm swarm(7);
  EXPECT_TRUE(swarm.sim->run_round().verified);

  // Actual byte-level infection of device 4's PMEM.
  swarm.vms[3]->adv_infect_pmem(100, to_bytes("\xde\xad\xbe\xef payload"));
  swarm.sim->advance_time(sim::Duration::from_ms(50));
  EXPECT_FALSE(swarm.sim->run_round().verified);
}

TEST(VmIntegration, ReflashRestoresTrust) {
  VmSwarm swarm(7);
  swarm.vms[2]->adv_infect_pmem(0, to_bytes("evil"));
  EXPECT_FALSE(swarm.sim->run_round().verified);

  // Re-flash the expected firmware (what a remediation action does).
  swarm.vms[2]->memory().load(device::Section::kPmem,
                              swarm.sim->verifier().expected_content(3));
  swarm.sim->advance_time(sim::Duration::from_ms(50));
  EXPECT_TRUE(swarm.sim->run_round().verified);
}

TEST(VmIntegration, MixedFidelitySwarm) {
  // VMs on some nodes, synthetic agents on the rest — both must agree.
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  auto sim = SapSimulation::balanced(cfg, 10, /*seed=*/4);
  device::DeviceConfig dcfg;
  dcfg.layout = device::MemoryLayout{256, cfg.pmem_size, 1024, 4096};
  device::Device vm(5, dcfg, sim.verifier().device_key(5), Bytes(20, 1));
  vm.load_firmware(to_bytes("real machine among stand-ins"));
  vm.provision();
  ASSERT_TRUE(vm.boot());
  sim.attach_vm(5, &vm);

  EXPECT_TRUE(sim.run_round().verified);
  vm.adv_infect_pmem(7, to_bytes("x"));
  sim.advance_time(sim::Duration::from_ms(50));
  EXPECT_FALSE(sim.run_round().verified);
}

TEST(VmIntegration, SkewedVmClockFailsItsAttestation) {
  VmSwarm swarm(7);
  swarm.sim->set_clock_skew(6, sim::Duration::from_ms(30));  // ~3 ticks
  const RoundReport r = swarm.sim->run_round();
  EXPECT_FALSE(r.verified);
}

TEST(VmIntegration, QoaIdentifyNamesTheInfectedVm) {
  SapConfig cfg;
  cfg.pmem_size = 4 * 1024;
  cfg.qoa = QoaMode::kIdentify;
  auto sim = SapSimulation::balanced(cfg, 7, /*seed=*/9);
  std::vector<std::unique_ptr<device::Device>> vms;
  for (net::NodeId id = 1; id <= 7; ++id) {
    device::DeviceConfig dcfg;
    dcfg.layout = device::MemoryLayout{256, cfg.pmem_size, 1024, 4096};
    auto vm = std::make_unique<device::Device>(
        id, dcfg, sim.verifier().device_key(id), Bytes(20, 0x42));
    vm->provision();
    ASSERT_TRUE(vm->boot());
    sim.attach_vm(id, vm.get());
    vms.push_back(std::move(vm));
  }
  vms[4]->adv_infect_pmem(11, to_bytes("rootkit"));
  const RoundReport r = sim.run_round();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.identify.bad, std::vector<net::NodeId>{5});
}

}  // namespace
}  // namespace cra::sap
