#include "sap/verifier.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cra::sap {
namespace {

SapConfig cfg() {
  SapConfig c;
  c.pmem_size = 1024;
  return c;
}

Verifier make_verifier(std::uint32_t n = 8) {
  Verifier v(cfg(), n, to_bytes("master-secret"));
  for (net::NodeId id = 1; id <= n; ++id) {
    v.set_expected_content(id, to_bytes("cfg-" + std::to_string(id)));
  }
  return v;
}

TEST(Verifier, KeysAreUniqueAndDeterministic) {
  Verifier v = make_verifier();
  std::set<Bytes> keys;
  for (net::NodeId id = 1; id <= 8; ++id) keys.insert(v.device_key(id));
  EXPECT_EQ(keys.size(), 8u);
  EXPECT_EQ(v.device_key(3), make_verifier().device_key(3));
  EXPECT_EQ(v.device_key(1).size(), 20u);  // l/8 for SHA-1
}

TEST(Verifier, ExpectedResultIsXorOfTokens) {
  Verifier v = make_verifier(3);
  const std::uint32_t chal = 55;
  Bytes acc(20, 0);
  for (net::NodeId id = 1; id <= 3; ++id) {
    xor_inplace(acc, v.expected_token(id, chal));
  }
  EXPECT_EQ(v.expected_result(chal), acc);
}

TEST(Verifier, VerifyAcceptsCorrectAggregate) {
  Verifier v = make_verifier();
  EXPECT_TRUE(v.verify(v.expected_result(9), 9));
}

TEST(Verifier, VerifyRejectsCorruptAggregate) {
  Verifier v = make_verifier();
  Bytes h = v.expected_result(9);
  h[0] = static_cast<std::uint8_t>(h[0] ^ 1);
  EXPECT_FALSE(v.verify(h, 9));
  EXPECT_FALSE(v.verify(Bytes(20, 0), 9));
  EXPECT_FALSE(v.verify(Bytes(19, 0), 9));  // wrong length
}

TEST(Verifier, VerifyIsChallengeSpecific) {
  Verifier v = make_verifier();
  EXPECT_FALSE(v.verify(v.expected_result(9), 10));
}

TEST(Verifier, TokensDependOnContentKeyAndChal) {
  Verifier v = make_verifier();
  EXPECT_NE(v.expected_token(1, 5), v.expected_token(2, 5));  // key+content
  EXPECT_NE(v.expected_token(1, 5), v.expected_token(1, 6));  // chal
  Verifier v2 = make_verifier();
  v2.set_expected_content(1, to_bytes("different"));
  EXPECT_NE(v.expected_token(1, 5), v2.expected_token(1, 5));  // content
}

TEST(Verifier, IdentifyClassification) {
  Verifier v = make_verifier(4);
  std::vector<DeviceReport> reports;
  reports.push_back({1, v.expected_token(1, 3)});       // good
  reports.push_back({2, Bytes(20, 0xff)});              // bad token
  reports.push_back({3, v.expected_token(3, 3)});       // good
  // device 4 missing
  const auto outcome = v.verify_identify(reports, 3);
  EXPECT_EQ(outcome.bad, std::vector<net::NodeId>{2});
  EXPECT_EQ(outcome.missing, std::vector<net::NodeId>{4});
  EXPECT_FALSE(outcome.all_good());
}

TEST(Verifier, IdentifyAllGood) {
  Verifier v = make_verifier(3);
  std::vector<DeviceReport> reports;
  for (net::NodeId id = 1; id <= 3; ++id) {
    reports.push_back({id, v.expected_token(id, 7)});
  }
  EXPECT_TRUE(v.verify_identify(reports, 7).all_good());
}

TEST(Verifier, IdentifyIgnoresBogusIds) {
  Verifier v = make_verifier(2);
  std::vector<DeviceReport> reports;
  reports.push_back({1, v.expected_token(1, 7)});
  reports.push_back({2, v.expected_token(2, 7)});
  reports.push_back({999, Bytes(20, 0)});  // out-of-range id: ignored
  EXPECT_TRUE(v.verify_identify(reports, 7).all_good());
}

TEST(Verifier, InputValidation) {
  EXPECT_THROW(Verifier(cfg(), 0, to_bytes("m")), std::invalid_argument);
  EXPECT_THROW(Verifier(cfg(), 5, {}), std::invalid_argument);
  Verifier v = make_verifier(2);
  EXPECT_THROW(v.device_key(0), std::out_of_range);
  EXPECT_THROW(v.device_key(3), std::out_of_range);
  EXPECT_THROW(v.expected_token(3, 1), std::out_of_range);
}

TEST(Verifier, RequestAuthKeyOnlyWhenEnabled) {
  Verifier off = make_verifier();
  EXPECT_TRUE(off.request_auth_key().empty());
  SapConfig c = cfg();
  c.authenticate_requests = true;
  Verifier on(c, 2, to_bytes("m"));
  EXPECT_EQ(on.request_auth_key().size(), 32u);
}

}  // namespace
}  // namespace cra::sap
