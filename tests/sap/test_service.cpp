// The AttestationService escalation state machine.
#include "sap/service.hpp"

#include <gtest/gtest.h>

namespace cra::sap {
namespace {

SapConfig cfg() {
  SapConfig c;
  c.pmem_size = 2 * 1024;
  return c;
}

ServicePolicy fast_policy() {
  ServicePolicy p;
  p.period = sim::Duration::from_ms(600);
  return p;
}

TEST(Service, HealthyFleetStaysInCheapMode) {
  auto swarm = SapSimulation::balanced(cfg(), 30);
  AttestationService service(swarm, fast_policy());
  const auto events = service.run(5);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, ServiceEvent::Kind::kHealthy);
    EXPECT_EQ(e.mode, QoaMode::kBinary);
  }
  EXPECT_FALSE(service.escalated());
}

TEST(Service, AlarmEscalatesAndLocalizes) {
  auto swarm = SapSimulation::balanced(cfg(), 30);
  AttestationService service(swarm, fast_policy());
  EXPECT_EQ(service.run_once().kind, ServiceEvent::Kind::kHealthy);

  swarm.compromise_device(19);
  // Round 2: binary alarm -> escalation armed.
  const ServiceEvent alarm = service.run_once();
  EXPECT_EQ(alarm.kind, ServiceEvent::Kind::kAlarm);
  EXPECT_TRUE(service.escalated());
  // Round 3: identify round names the device.
  const ServiceEvent local = service.run_once();
  EXPECT_EQ(local.kind, ServiceEvent::Kind::kLocalized);
  EXPECT_EQ(local.bad, std::vector<net::NodeId>{19});
  EXPECT_EQ(service.suspects(), std::vector<net::NodeId>{19});
  EXPECT_EQ(service.flag_count(19), 1u);
}

TEST(Service, DeescalatesAfterRecovery) {
  auto swarm = SapSimulation::balanced(cfg(), 30);
  AttestationService service(swarm, fast_policy());
  swarm.compromise_device(7);
  service.run_once();  // alarm
  service.run_once();  // localized
  swarm.restore_device(7);

  const ServiceEvent r1 = service.run_once();
  EXPECT_EQ(r1.kind, ServiceEvent::Kind::kRecovering);
  EXPECT_TRUE(service.escalated());
  const ServiceEvent r2 = service.run_once();
  EXPECT_EQ(r2.kind, ServiceEvent::Kind::kDeescalated);
  EXPECT_FALSE(service.escalated());
  EXPECT_TRUE(service.suspects().empty());
  // Back to normal.
  EXPECT_EQ(service.run_once().kind, ServiceEvent::Kind::kHealthy);
}

TEST(Service, UnresponsiveDeviceLocalizedAsMissing) {
  auto swarm = SapSimulation::balanced(cfg(), 30);
  AttestationService service(swarm, fast_policy());
  swarm.set_device_unresponsive(30, true);
  service.run_once();  // alarm
  const ServiceEvent local = service.run_once();
  EXPECT_EQ(local.kind, ServiceEvent::Kind::kLocalized);
  EXPECT_EQ(local.missing, std::vector<net::NodeId>{30});
}

TEST(Service, EscalationSavesBandwidthOverAlwaysIdentify) {
  // The policy's point: healthy rounds cost binary-mode bytes; the
  // identify price is paid only while localizing. Track the actual
  // per-round utilization through a healthy-infected-healed episode.
  auto swarm = SapSimulation::balanced(cfg(), 62);
  AttestationService service(swarm, fast_policy());

  service.run_once();  // healthy (binary)
  const std::uint64_t binary_bytes = 40u * 62u;
  EXPECT_EQ(service.log().back().mode, QoaMode::kBinary);

  swarm.compromise_device(9);
  service.run_once();  // alarm (still binary-priced)
  const ServiceEvent localized = service.run_once();  // identify-priced
  EXPECT_EQ(localized.mode, QoaMode::kIdentify);
  swarm.restore_device(9);
  service.run_once();
  service.run_once();  // de-escalated
  const ServiceEvent steady = service.run_once();
  EXPECT_EQ(steady.mode, QoaMode::kBinary);

  // Sanity on the price gap that motivates the whole policy.
  auto identify_cfg = cfg();
  identify_cfg.qoa = QoaMode::kIdentify;
  auto identify = SapSimulation::balanced(identify_cfg, 62);
  EXPECT_LT(binary_bytes, identify.run_round().u_ca_bytes / 2);
}

TEST(Service, RepeatedFlagsAccumulatePerDevice) {
  auto swarm = SapSimulation::balanced(cfg(), 20);
  ServicePolicy policy = fast_policy();
  policy.healthy_to_deescalate = 99;  // stay escalated
  AttestationService service(swarm, policy);
  swarm.compromise_device(4);
  service.run_once();  // alarm
  service.run_once();  // localized #1
  service.run_once();  // localized #2
  EXPECT_EQ(service.flag_count(4), 2u);
  EXPECT_EQ(service.flag_count(5), 0u);
  EXPECT_THROW(service.flag_count(0), std::out_of_range);
  EXPECT_THROW(service.flag_count(99), std::out_of_range);
}

TEST(Service, EventLogAccumulates) {
  auto swarm = SapSimulation::balanced(cfg(), 10);
  AttestationService service(swarm, fast_policy());
  service.run(3);
  EXPECT_EQ(service.log().size(), 3u);
  EXPECT_EQ(service.log()[0].round, 1u);
  EXPECT_EQ(service.log()[2].round, 3u);
  EXPECT_LT(service.log()[0].at.ns(), service.log()[2].at.ns());
}

TEST(Service, RejectsZeroThresholds) {
  auto swarm = SapSimulation::balanced(cfg(), 5);
  ServicePolicy bad = fast_policy();
  bad.failures_to_escalate = 0;
  EXPECT_THROW(AttestationService(swarm, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cra::sap
